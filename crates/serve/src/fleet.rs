//! Fleet-scale serving: sharded virtual NPUs, affinity placement,
//! autoscaling admission.
//!
//! One virtual NPU tops out around eight concurrent sessions (the
//! `serve_bench` sweep); the ROADMAP's north star is "heavy traffic from
//! millions of users". This module scales the serving layer out instead of
//! up: a **fleet** of virtual NPU shards, each running the same
//! deterministic event loop ([`crate::sched`]) behind its own
//! [`AdmissionController`], fed by a traffic trace from
//! [`crate::loadgen`].
//!
//! The simulation is a two-phase design:
//!
//! 1. **Placement walk** — arrivals are processed in time order. Each
//!    offered session is billed analytically ([`SessionDemand`], restamped
//!    for the arrival's pacing and compute mode) and placed on the active
//!    shard with the best *model-affinity* score: shards accumulate a mean
//!    NN-L compute fraction over their resident sessions, and a session
//!    prefers the shard whose mix looks most like its own — NN-L-heavy
//!    (short-GOP, detection-anchor) streams cluster apart from
//!    NN-S-dominated ones, which preserves the lagged-queue batching win
//!    that cross-session scheduling exists to harvest. Load and shard
//!    index break ties, so placement is a pure function of the trace.
//!    Departures (drained streams and mid-stream churn) release their
//!    demand back to the owning shard. An optional **rebalance** rule
//!    steals the most recently placed session from the hottest shard for
//!    the coolest when utilisation skew crosses a threshold; an optional
//!    **autoscaler** adds shards ahead of projected demand (and reactively
//!    when every shard rejects), and drains the emptiest shard after a
//!    cooldown when the fleet is over-provisioned.
//! 2. **Replay** — every shard's final session set is instantiated from
//!    its stream template ([`crate::session::SessionTemplate`], a prefix
//!    for churned sessions) and replayed through the shared-NPU event loop
//!    in parallel (striped across workers — shard costs are skewed by
//!    construction, so contiguous chunking would serialise the hot tail).
//!    A shard created at `t` starts serving at
//!    `t + `[`vrd_sim::SimConfig::shard_spinup_ns`] — autoscaling pays its
//!    provisioning latency on the simulated clock, not for free.
//!
//! Migrated sessions replay entirely on their final shard (migration is a
//! placement-time correction, not a mid-schedule hand-off), and departure
//! instants are accounted at nominal stream pacing; both keep the
//! placement walk analytic while the replay stays exact. Everything is
//! deterministic: the same trace, library and config produce a
//! byte-identical [`FleetReport`] at any worker-thread count.

use crate::admission::{AdmissionController, RejectReason, SessionDemand, SloConfig};
use crate::error::{Result, ServeError};
use crate::loadgen::TrafficTrace;
use crate::metrics::LatencyStats;
use crate::sched::{schedule_sampled, SchedConfig, SchedPolicy, ScheduleOutcome};
use crate::session::{DrivenSession, SessionSpec, SessionTemplate};
use vr_dann::ComputeMode;
use vrd_sim::SimConfig;

/// One stream the fleet can serve: a driven template plus the admission
/// demand it was estimated with. Arrivals resolve to entries by
/// `stream % library.len()`; pacing and compute mode are restamped per
/// arrival.
#[derive(Debug, Clone)]
pub struct StreamEntry {
    /// The stream's engine emissions, pacing unstamped.
    pub template: SessionTemplate,
    /// Analytic demand prototype (`frame_interval_ns` is overwritten by
    /// each arrival's pacing).
    pub demand: SessionDemand,
}

/// Autoscaler policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscaleConfig {
    /// Per-shard utilisation the proactive sizer provisions for: shards
    /// are added so `fleet utilisation / active shards` stays near this.
    pub target_utilization: f64,
    /// Drain a shard when the fleet could serve its load with one fewer
    /// shard below this mean utilisation.
    pub scale_down_level: f64,
    /// Minimum simulated time between scale-down events (scale-*up* is
    /// never throttled — a spike must be absorbed immediately).
    pub cooldown_ns: f64,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        Self {
            target_utilization: 0.6,
            scale_down_level: 0.35,
            cooldown_ns: 2e7,
        }
    }
}

/// Work-stealing rebalance knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceConfig {
    /// Steal when `max − min` active-shard utilisation exceeds this.
    pub skew_threshold: f64,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        Self {
            skew_threshold: 0.25,
        }
    }
}

/// Fleet configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Shards provisioned at `t = 0` (also the autoscaler's floor).
    pub min_shards: usize,
    /// The autoscaler's ceiling. With `autoscale: None` the fleet runs
    /// exactly `min_shards` shards for the whole window.
    pub max_shards: usize,
    /// Scheduling discipline every shard replays under.
    pub policy: SchedPolicy,
    /// Per-shard event-loop knobs (`npu_available_ns` is overwritten with
    /// each shard's creation + spin-up instant).
    pub sched: SchedConfig,
    /// Per-shard admission SLO.
    pub slo: SloConfig,
    /// Hardware cost model.
    pub sim: SimConfig,
    /// Autoscaling policy (`None` = fixed fleet).
    pub autoscale: Option<AutoscaleConfig>,
    /// Skew-triggered work stealing (`None` = placements are final).
    pub rebalance: Option<RebalanceConfig>,
    /// Worker threads for the replay phase (`None` = runtime default).
    /// Thread count never changes results, only wall time.
    pub threads: Option<usize>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            min_shards: 1,
            max_shards: 8,
            policy: SchedPolicy::Batch,
            sched: SchedConfig::default(),
            slo: SloConfig::default(),
            sim: SimConfig::default(),
            autoscale: Some(AutoscaleConfig::default()),
            rebalance: Some(RebalanceConfig::default()),
            threads: None,
        }
    }
}

/// Where one offered session ended up. Every offer gets exactly one fate —
/// the conservation law the proptest suite pins.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OfferFate {
    /// Admitted to (and replayed on) this shard.
    Admitted {
        /// Final owning shard index.
        shard: usize,
    },
    /// Every shard's admission controller turned it away.
    Rejected {
        /// The best-placed shard's reason.
        reason: RejectReason,
    },
    /// Churned out before contributing a single work item.
    ChurnedOut,
}

/// One shard's outcome over the window.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// Instant the shard was provisioned.
    pub created_ns: f64,
    /// Instant it finished draining (`None` = alive at window end).
    pub retired_ns: Option<f64>,
    /// Sessions that finally resided here.
    pub sessions: usize,
    /// Sessions stolen from hotter shards.
    pub migrations_in: usize,
    /// Peak admitted utilisation the shard's controller reached.
    pub peak_utilization: f64,
    /// Energy over the shard's active window (compute + static draw).
    pub energy_j: f64,
    /// The shard's replayed schedule.
    pub outcome: ScheduleOutcome,
}

/// The fleet-wide outcome of one traffic window.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Per-offer fates, offer order.
    pub fates: Vec<OfferFate>,
    /// Sessions offered.
    pub offered: usize,
    /// Sessions admitted to a shard.
    pub admitted: usize,
    /// Sessions rejected by every shard.
    pub rejected: usize,
    /// Sessions that churned out before service.
    pub churned_out: usize,
    /// Peak simultaneously-resident sessions across the fleet.
    pub peak_concurrent: usize,
    /// Sessions moved by the rebalancer.
    pub migrations: usize,
    /// Shards added after `t = 0`.
    pub scale_ups: usize,
    /// Shards drained by the autoscaler.
    pub scale_downs: usize,
    /// Peak simultaneously-active shards.
    pub peak_shards: usize,
    /// Per-shard outcomes, creation order.
    pub shards: Vec<ShardReport>,
    /// Frames served across the fleet.
    pub frames_served: usize,
    /// Frames shed across the fleet.
    pub frames_shed: usize,
    /// NN-L ↔ NN-S switches paid across the fleet.
    pub switches: usize,
    /// NPU busy time summed over shards.
    pub busy_ns: f64,
    /// Completion time of the last served frame on any shard.
    pub makespan_ns: f64,
    /// Served frames per second of makespan.
    pub throughput_fps: f64,
    /// Fleet-wide frame latency, computed over the *merged* per-shard raw
    /// samples (percentiles of per-shard percentiles would be wrong).
    pub latency: LatencyStats,
    /// Energy summed over shards.
    pub energy_j: f64,
}

impl FleetReport {
    /// Fraction of NPU-bound frames that were shed instead of served.
    pub fn shed_rate(&self) -> f64 {
        let total = self.frames_served + self.frames_shed;
        if total == 0 {
            0.0
        } else {
            self.frames_shed as f64 / total as f64
        }
    }
}

/// Internal placement-walk state of one shard.
struct ShardState {
    created_ns: f64,
    draining_since: Option<f64>,
    retired_ns: Option<f64>,
    controller: AdmissionController,
    /// Resident offer ids, placement order (the rebalancer steals the tail).
    resident: Vec<usize>,
    /// Sum of resident sessions' NN-L compute fractions (affinity mean).
    affinity_sum: f64,
    peak_utilization: f64,
    migrations_in: usize,
}

impl ShardState {
    fn new(created_ns: f64, slo: SloConfig, batch_cap: usize, sim: SimConfig) -> Self {
        Self {
            created_ns,
            draining_since: None,
            retired_ns: None,
            controller: AdmissionController::new(slo, batch_cap, sim),
            resident: Vec::new(),
            affinity_sum: 0.0,
            peak_utilization: 0.0,
            migrations_in: 0,
        }
    }

    fn is_active(&self) -> bool {
        self.draining_since.is_none()
    }

    /// Mean NN-L compute fraction of the resident sessions (0.5 when
    /// empty — a fresh shard is equally attractive to both mixes).
    fn affinity_mean(&self) -> f64 {
        if self.resident.is_empty() {
            0.5
        } else {
            self.affinity_sum / self.resident.len() as f64
        }
    }
}

/// Weight of the affinity term against utilisation in the placement
/// score. Affinity distances span [0, 1] and per-session utilisation
/// steps are ~0.1, so a weight of 2 keeps like-with-like placement
/// decisive until a shard is badly overloaded relative to its peers.
const AFFINITY_WEIGHT: f64 = 2.0;

/// Fraction of a session's NPU time spent in NN-L — the placement
/// affinity axis.
fn nnl_fraction(d: &SessionDemand) -> f64 {
    let l = d.anchors as f64 * d.nnl_ns;
    let s = d.b_frames as f64 * d.nns_ns;
    if l + s > 0.0 {
        l / (l + s)
    } else {
        0.5
    }
}

/// Per-offer placement bookkeeping.
struct Placement {
    shard: usize,
    demand: SessionDemand,
    affinity: f64,
    /// Template items the session contributes (full length unless churned).
    budget_items: usize,
    compute: ComputeMode,
    interval_ns: f64,
}

/// Serves one traffic window on a shard fleet. See the module docs for the
/// two-phase design.
///
/// # Errors
/// [`ServeError::Scheduler`] when the stream library is empty or a shard
/// replay breaks an event-loop invariant.
pub fn run_fleet(
    trace: &TrafficTrace,
    library: &[StreamEntry],
    cfg: &FleetConfig,
) -> Result<FleetReport> {
    if library.is_empty() {
        return Err(ServeError::Scheduler {
            time_ns: 0.0,
            detail: "fleet offered a traffic trace with an empty stream library".into(),
        });
    }
    let min_shards = cfg.min_shards.max(1);
    let max_shards = cfg.max_shards.max(min_shards);
    let mut shards: Vec<ShardState> = (0..min_shards)
        .map(|_| ShardState::new(0.0, cfg.slo, cfg.sched.batch_cap, cfg.sim))
        .collect();
    let mut fates: Vec<OfferFate> = Vec::with_capacity(trace.arrivals.len());
    let mut placements: Vec<Option<Placement>> = Vec::with_capacity(trace.arrivals.len());
    // (end_ns, offer) of resident sessions, drained as the clock passes.
    let mut departures: Vec<(f64, usize)> = Vec::new();
    let mut migrations = 0usize;
    let mut scale_ups = 0usize;
    let mut scale_downs = 0usize;
    let mut peak_concurrent = 0usize;
    let mut peak_shards = min_shards;
    let mut last_scale_down_ns = f64::NEG_INFINITY;

    for arr in &trace.arrivals {
        let t = arr.arrive_ns;

        // 1. Sessions whose streams ended (or churned out) before `t`
        // release their demand — in end-time order, ids breaking ties, so
        // the controller state is a pure function of the trace.
        departures.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        while let Some(&(end, offer)) = departures.first() {
            if end > t {
                break;
            }
            departures.remove(0);
            let p = placements[offer]
                .as_ref()
                .expect("departing offer was placed");
            let shard = &mut shards[p.shard];
            shard.controller.release(&p.demand);
            shard.affinity_sum -= p.affinity;
            let pos = shard
                .resident
                .iter()
                .position(|&o| o == offer)
                .expect("departing offer is resident on its shard");
            shard.resident.remove(pos);
            if shard.draining_since.is_some() && shard.resident.is_empty() {
                shard.retired_ns = Some(end);
            }
        }

        // 2. Resolve the arrival against the library and bill it.
        let entry = &library[arr.stream % library.len()];
        let interval_ns = if arr.interval_ns > 0.0 {
            arr.interval_ns
        } else {
            entry.demand.frame_interval_ns
        };
        let mut demand = entry.demand;
        demand.frame_interval_ns = interval_ns;
        if arr.shape.compute == ComputeMode::Int8 && demand.compute != ComputeMode::Int8 {
            // An int8 session over an f32-estimated stream: NN-S speeds up
            // by the quantized service-rate ratio.
            demand.nns_ns *= cfg.sim.npu_ops_per_ns() / cfg.sim.npu_int8_ops_per_ns();
            demand.compute = ComputeMode::Int8;
        }
        let compute = demand.compute;

        // Mid-stream churn: only work whose decode unit fully arrives
        // (one pacing interval) before departure is ever offered; a
        // session that leaves within its first interval churns out with
        // an empty prefix and never reaches admission.
        let nominal_end = t + entry.template.frames.max(1) as f64 * interval_ns;
        let (end_ns, budget_items) = match arr.depart_ns {
            Some(d) => {
                let dur = (d - t).max(0.0);
                let n = entry
                    .template
                    .items
                    .iter()
                    .filter(|it| (it.arrive_idx as f64 + 1.0) * interval_ns <= dur)
                    .count();
                (d.min(nominal_end), n)
            }
            None => (nominal_end, entry.template.items.len()),
        };
        if budget_items == 0 {
            fates.push(OfferFate::ChurnedOut);
            placements.push(None);
            continue;
        }

        let new_util =
            demand.compute_utilization() + demand.switch_utilization(cfg.sched.batch_cap, &cfg.sim);

        // 3. Autoscale: proactively size the active set for the projected
        // load, and drain the emptiest shard when over-provisioned.
        if let Some(auto) = &cfg.autoscale {
            let active = shards.iter().filter(|s| s.is_active()).count();
            let fleet_util: f64 = shards
                .iter()
                .filter(|s| s.is_active())
                .map(|s| s.controller.utilization())
                .sum();
            let needed =
                ((fleet_util + new_util) / auto.target_utilization.max(1e-6)).ceil() as usize;
            let mut active_now = active;
            while active_now < needed.min(max_shards) {
                shards.push(ShardState::new(t, cfg.slo, cfg.sched.batch_cap, cfg.sim));
                scale_ups += 1;
                active_now += 1;
            }
            if active_now > min_shards
                && t - last_scale_down_ns >= auto.cooldown_ns
                && fleet_util / active_now as f64 <= auto.scale_down_level
                && fleet_util / (active_now - 1) as f64 <= auto.target_utilization
            {
                // Drain the emptiest active shard; highest index breaks
                // ties so the longest-lived shards persist.
                let victim = shards
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.is_active())
                    .min_by(|(i, a), (j, b)| {
                        a.controller
                            .utilization()
                            .total_cmp(&b.controller.utilization())
                            .then(j.cmp(i))
                    })
                    .map(|(i, _)| i)
                    .expect("active_now > min_shards ≥ 1 shards are active");
                shards[victim].draining_since = Some(t);
                if shards[victim].resident.is_empty() {
                    shards[victim].retired_ns = Some(t);
                }
                scale_downs += 1;
                last_scale_down_ns = t;
            }
        }
        peak_shards = peak_shards.max(shards.iter().filter(|s| s.retired_ns.is_none()).count());

        // 4. Affinity placement: active shards ordered by how closely
        // their resident NN-L mix matches the session's, load and index
        // breaking ties.
        let frac = nnl_fraction(&demand);
        let mut order: Vec<usize> = (0..shards.len())
            .filter(|&i| shards[i].is_active())
            .collect();
        order.sort_by(|&a, &b| {
            let sa = (shards[a].affinity_mean() - frac).abs() * AFFINITY_WEIGHT
                + shards[a].controller.utilization();
            let sb = (shards[b].affinity_mean() - frac).abs() * AFFINITY_WEIGHT
                + shards[b].controller.utilization();
            sa.total_cmp(&sb).then(a.cmp(&b))
        });
        let mut placed: Option<usize> = None;
        let mut first_reject: Option<RejectReason> = None;
        for &i in &order {
            match shards[i].controller.try_admit(&demand) {
                Ok(_) => {
                    placed = Some(i);
                    break;
                }
                Err(r) => {
                    first_reject.get_or_insert(r);
                }
            }
        }
        // Reactive scale-up: every running shard said no, but the fleet
        // has headroom to provision one more.
        if placed.is_none()
            && cfg.autoscale.is_some()
            && shards.iter().filter(|s| s.is_active()).count() < max_shards
        {
            let mut fresh = ShardState::new(t, cfg.slo, cfg.sched.batch_cap, cfg.sim);
            if let Ok(_p) = fresh.controller.try_admit(&demand) {
                shards.push(fresh);
                scale_ups += 1;
                placed = Some(shards.len() - 1);
                peak_shards =
                    peak_shards.max(shards.iter().filter(|s| s.retired_ns.is_none()).count());
            }
        }
        let Some(shard_idx) = placed else {
            fates.push(OfferFate::Rejected {
                reason: first_reject.unwrap_or(RejectReason::Utilization { projected: 1.0 }),
            });
            placements.push(None);
            continue;
        };

        let shard = &mut shards[shard_idx];
        shard.resident.push(fates.len());
        shard.affinity_sum += frac;
        shard.peak_utilization = shard.peak_utilization.max(shard.controller.utilization());
        departures.push((end_ns, fates.len()));
        fates.push(OfferFate::Admitted { shard: shard_idx });
        placements.push(Some(Placement {
            shard: shard_idx,
            demand,
            affinity: frac,
            budget_items,
            compute,
            interval_ns,
        }));
        peak_concurrent =
            peak_concurrent.max(shards.iter().map(|s| s.resident.len()).sum::<usize>());

        // 5. Skew-triggered work stealing: move the hottest shard's most
        // recent placement to the coolest shard when the utilisation gap
        // crosses the threshold.
        if let Some(reb) = &cfg.rebalance {
            let active: Vec<usize> = (0..shards.len())
                .filter(|&i| shards[i].is_active())
                .collect();
            if active.len() >= 2 {
                let hot = *active
                    .iter()
                    .max_by(|&&a, &&b| {
                        shards[a]
                            .controller
                            .utilization()
                            .total_cmp(&shards[b].controller.utilization())
                            .then(b.cmp(&a))
                    })
                    .expect("≥ 2 active shards");
                let cool = *active
                    .iter()
                    .min_by(|&&a, &&b| {
                        shards[a]
                            .controller
                            .utilization()
                            .total_cmp(&shards[b].controller.utilization())
                            .then(a.cmp(&b))
                    })
                    .expect("≥ 2 active shards");
                let skew =
                    shards[hot].controller.utilization() - shards[cool].controller.utilization();
                if hot != cool && skew > reb.skew_threshold {
                    if let Some(&victim) = shards[hot].resident.last() {
                        let vp = placements[victim]
                            .as_ref()
                            .expect("resident offer was placed");
                        let (vd, va) = (vp.demand, vp.affinity);
                        if shards[cool].controller.try_admit(&vd).is_ok() {
                            shards[hot].resident.pop();
                            shards[hot].controller.release(&vd);
                            shards[hot].affinity_sum -= va;
                            shards[cool].resident.push(victim);
                            shards[cool].affinity_sum += va;
                            shards[cool].peak_utilization = shards[cool]
                                .peak_utilization
                                .max(shards[cool].controller.utilization());
                            shards[cool].migrations_in += 1;
                            placements[victim].as_mut().expect("placed").shard = cool;
                            if let OfferFate::Admitted { shard } = &mut fates[victim] {
                                *shard = cool;
                            }
                            migrations += 1;
                        }
                    }
                }
            }
        }
    }

    // 6. Replay: group final placements per shard (offer order preserves
    // determinism), instantiate each session from its template, and run
    // every shard's event loop in parallel.
    let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); shards.len()];
    for (offer, p) in placements.iter().enumerate() {
        if let Some(p) = p {
            per_shard[p.shard].push(offer);
        }
    }
    let spinup_ns = cfg.sim.shard_spinup_ns();
    let jobs: Vec<(usize, Vec<DrivenSession>)> = per_shard
        .iter()
        .enumerate()
        .map(|(si, offers)| {
            let driven = offers
                .iter()
                .enumerate()
                .map(|(dense, &offer)| {
                    let p = placements[offer].as_ref().expect("grouped offer placed");
                    let arr = &trace.arrivals[offer];
                    let entry = &library[arr.stream % library.len()];
                    let spec = SessionSpec {
                        start_offset_ns: arr.arrive_ns,
                        frame_interval_ns: p.interval_ns,
                    };
                    let mut d = entry
                        .template
                        .instantiate_prefix(dense, &spec, p.budget_items);
                    d.compute = p.compute;
                    d
                })
                .collect();
            (si, driven)
        })
        .collect();
    let threads = vrd_runtime::pool_threads(cfg.threads, jobs.len());
    let replays: Vec<Result<(ScheduleOutcome, Vec<f64>)>> =
        vrd_runtime::parallel_map_striped(&jobs, threads, |(si, driven)| {
            let sched = SchedConfig {
                npu_available_ns: shards[*si].created_ns + spinup_ns,
                ..cfg.sched
            };
            schedule_sampled(driven, cfg.policy, &sched, &cfg.sim)
        });

    let mut shard_reports = Vec::with_capacity(shards.len());
    let mut all_samples: Vec<f64> = Vec::new();
    let mut frames_served = 0usize;
    let mut frames_shed = 0usize;
    let mut switches = 0usize;
    let mut busy_ns = 0.0f64;
    let mut makespan_ns = 0.0f64;
    let mut energy_total = 0.0f64;
    for (state, replay) in shards.iter().zip(replays) {
        let (outcome, samples) = replay?;
        all_samples.extend_from_slice(&samples);
        frames_served += outcome.frames_served;
        frames_shed += outcome.frames_shed;
        switches += outcome.switches;
        busy_ns += outcome.busy_ns;
        makespan_ns = makespan_ns.max(outcome.makespan_ns);
        // The device is alive from creation until its last completion (an
        // idle shard still pays spin-up plus static draw).
        let alive_until = outcome
            .makespan_ns
            .max(state.created_ns + spinup_ns)
            .max(state.retired_ns.unwrap_or(0.0));
        let energy_j = cfg
            .sim
            .shard_energy_j(outcome.busy_ns, alive_until - state.created_ns);
        energy_total += energy_j;
        shard_reports.push(ShardReport {
            created_ns: state.created_ns,
            retired_ns: state.retired_ns,
            sessions: outcome.per_session.len(),
            migrations_in: state.migrations_in,
            peak_utilization: state.peak_utilization,
            energy_j,
            outcome,
        });
    }

    let admitted = fates
        .iter()
        .filter(|f| matches!(f, OfferFate::Admitted { .. }))
        .count();
    let rejected = fates
        .iter()
        .filter(|f| matches!(f, OfferFate::Rejected { .. }))
        .count();
    let churned_out = fates
        .iter()
        .filter(|f| matches!(f, OfferFate::ChurnedOut))
        .count();
    let latency = LatencyStats::from_samples(&all_samples);
    let throughput_fps = if makespan_ns > 0.0 {
        frames_served as f64 / (makespan_ns * 1e-9)
    } else {
        0.0
    };
    Ok(FleetReport {
        offered: fates.len(),
        fates,
        admitted,
        rejected,
        churned_out,
        peak_concurrent,
        migrations,
        scale_ups,
        scale_downs,
        peak_shards,
        shards: shard_reports,
        frames_served,
        frames_shed,
        switches,
        busy_ns,
        makespan_ns,
        throughput_fps,
        latency,
        energy_j: energy_total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::{generate, Envelope, LoadGenConfig};
    use crate::session::TemplateItem;
    use vrd_codec::FrameType;

    /// A synthetic template: `anchors` NN-L items interleaved with `bs`
    /// NN-S items per anchor, one item per decode unit — no NN compute, so
    /// fleet mechanics are testable in microseconds.
    fn synth_entry(
        anchors: usize,
        bs: usize,
        interval_ns: f64,
        nnl_ops: u64,
        nns_ops: u64,
        sim: &SimConfig,
    ) -> StreamEntry {
        let mut items = Vec::new();
        for a in 0..anchors {
            items.push(TemplateItem {
                display: (a * (bs + 1)) as u32,
                ftype: FrameType::I,
                ops: nnl_ops,
                uses_large_model: true,
                arrive_idx: items.len(),
                decode_ns: 1_000.0,
            });
            for b in 0..bs {
                items.push(TemplateItem {
                    display: (a * (bs + 1) + b + 1) as u32,
                    ftype: FrameType::B,
                    ops: nns_ops,
                    uses_large_model: false,
                    arrive_idx: items.len(),
                    decode_ns: 500.0,
                });
            }
        }
        let frames = items.len();
        let total_ops: u64 = items.iter().map(|i| i.ops).sum();
        let switches = items
            .windows(2)
            .filter(|w| w[0].uses_large_model != w[1].uses_large_model)
            .count();
        let ops_per_ns = sim.npu_ops_per_ns();
        let demand = SessionDemand {
            nnl_ns: nnl_ops as f64 / ops_per_ns,
            nns_ns: nns_ops as f64 / ops_per_ns,
            compute: ComputeMode::F32Reference,
            anchors,
            b_frames: anchors * bs,
            frame_interval_ns: interval_ns,
        };
        StreamEntry {
            template: SessionTemplate {
                name: format!("synth-{anchors}x{bs}"),
                compute: ComputeMode::F32Reference,
                items,
                frames,
                peak_live_frames: 2,
                total_ops,
                switches_in_order: switches,
                isolated_ns: total_ops as f64 / ops_per_ns,
            },
            demand,
        }
    }

    fn base_trace(sessions: usize, churn: f64) -> TrafficTrace {
        generate(&LoadGenConfig {
            sessions,
            streams: 2,
            stream_frames: 8,
            base_interval_ns: 1e6,
            mean_interarrival_ns: 2e5,
            horizon_ns: 5e7,
            envelope: Envelope::Flat,
            churn_rate: churn,
            heterogeneous: true,
            ..LoadGenConfig::default()
        })
    }

    fn base_cfg(sim: SimConfig) -> FleetConfig {
        FleetConfig {
            min_shards: 2,
            max_shards: 8,
            sim,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn fleet_conserves_offers_and_aggregates_shards() {
        let sim = SimConfig::default();
        let library = vec![
            synth_entry(4, 6, 1e6, 4_000_000, 40_000, &sim),
            synth_entry(8, 1, 1e6, 4_000_000, 40_000, &sim), // NN-L-heavy mix
        ];
        let trace = base_trace(48, 0.3);
        let report = run_fleet(&trace, &library, &base_cfg(sim)).unwrap();

        assert_eq!(report.offered, 48);
        assert_eq!(report.fates.len(), 48);
        assert_eq!(
            report.admitted + report.rejected + report.churned_out,
            report.offered
        );
        assert!(report.admitted > 0);
        // Fleet totals are exactly the sum of shard totals.
        let sessions: usize = report.shards.iter().map(|s| s.sessions).sum();
        assert_eq!(sessions, report.admitted);
        let served: usize = report.shards.iter().map(|s| s.outcome.frames_served).sum();
        assert_eq!(served, report.frames_served);
        assert_eq!(report.latency.count, report.frames_served);
        assert!(report.frames_served > 0);
        assert!(report.energy_j > 0.0);
        assert!(report.throughput_fps > 0.0);
        // Every admitted fate points at a real shard that counted it.
        for fate in &report.fates {
            if let OfferFate::Admitted { shard } = fate {
                assert!(*shard < report.shards.len());
            }
        }
        // Deterministic: a second run is structurally identical.
        let again = run_fleet(&trace, &library, &base_cfg(sim)).unwrap();
        assert_eq!(report, again);
        // And thread-count invariant.
        let mut one = base_cfg(sim);
        one.threads = Some(1);
        let serial = run_fleet(&trace, &library, &one).unwrap();
        assert_eq!(report, serial);
    }

    #[test]
    fn affinity_placement_separates_model_mixes() {
        let sim = SimConfig::default();
        // Two sharply different mixes, no autoscale/rebalance noise.
        let library = vec![
            synth_entry(2, 14, 1e6, 1_000_000, 400_000, &sim),
            synth_entry(12, 0, 1e6, 1_000_000, 400_000, &sim),
        ];
        let trace = base_trace(24, 0.0);
        let cfg = FleetConfig {
            min_shards: 2,
            max_shards: 2,
            autoscale: None,
            rebalance: None,
            sim,
            ..FleetConfig::default()
        };
        let report = run_fleet(&trace, &library, &cfg).unwrap();
        // Group admitted offers per (shard, stream): each shard should be
        // dominated by one stream class.
        let mut counts = [[0usize; 2]; 2];
        for (offer, fate) in report.fates.iter().enumerate() {
            if let OfferFate::Admitted { shard } = fate {
                counts[*shard][trace.arrivals[offer].stream % 2] += 1;
            }
        }
        for shard in 0..2 {
            let total = counts[shard][0] + counts[shard][1];
            if total >= 4 {
                let major = counts[shard][0].max(counts[shard][1]);
                assert!(
                    major * 4 >= total * 3,
                    "shard {shard} mixes streams {counts:?}"
                );
            }
        }
    }

    #[test]
    fn autoscaler_grows_the_fleet_under_a_spike() {
        let sim = SimConfig::default();
        let library = vec![synth_entry(4, 6, 1e6, 4_000_000, 40_000, &sim)];
        let spike = generate(&LoadGenConfig {
            sessions: 64,
            streams: 1,
            stream_frames: 8,
            base_interval_ns: 1e6,
            mean_interarrival_ns: 1e6,
            horizon_ns: 6e7,
            envelope: Envelope::Spike {
                factor: 4.0,
                start_frac: 0.3,
                end_frac: 0.6,
            },
            churn_rate: 0.0,
            heterogeneous: false,
            ..LoadGenConfig::default()
        });
        let cfg = FleetConfig {
            min_shards: 1,
            max_shards: 12,
            rebalance: None,
            sim,
            ..FleetConfig::default()
        };
        let report = run_fleet(&spike, &library, &cfg).unwrap();
        assert!(report.scale_ups > 0, "spike never triggered a scale-up");
        assert!(report.peak_shards > 1);
        assert_eq!(report.rejected, 0, "autoscaled fleet rejected sessions");
        // The fixed single shard, by contrast, must turn sessions away.
        let fixed = FleetConfig {
            min_shards: 1,
            max_shards: 1,
            autoscale: None,
            rebalance: None,
            sim,
            ..FleetConfig::default()
        };
        let starved = run_fleet(&spike, &library, &fixed).unwrap();
        assert!(starved.rejected > 0);
        // Spin-up is billed: no shard serves before it is up.
        for s in &report.shards {
            if s.outcome.frames_served > 0 {
                assert!(s.outcome.makespan_ns >= s.created_ns + sim.shard_spinup_ns());
            }
        }
    }

    #[test]
    fn rebalance_steals_from_the_hottest_shard() {
        let sim = SimConfig::default();
        let library = vec![synth_entry(6, 4, 8e5, 4_000_000, 40_000, &sim)];
        let trace = generate(&LoadGenConfig {
            sessions: 32,
            streams: 1,
            stream_frames: 10,
            base_interval_ns: 8e5,
            mean_interarrival_ns: 1e5,
            horizon_ns: 2e7,
            envelope: Envelope::Bursty {
                period_frac: 0.5,
                duty: 0.3,
                quiet_level: 0.05,
            },
            churn_rate: 0.0,
            heterogeneous: true,
            ..LoadGenConfig::default()
        });
        let cfg = FleetConfig {
            min_shards: 3,
            max_shards: 3,
            autoscale: None,
            rebalance: Some(RebalanceConfig {
                skew_threshold: 0.1,
            }),
            sim,
            ..FleetConfig::default()
        };
        let balanced = run_fleet(&trace, &library, &cfg).unwrap();
        let frozen = run_fleet(
            &trace,
            &library,
            &FleetConfig {
                rebalance: None,
                ..cfg
            },
        )
        .unwrap();
        assert!(balanced.migrations > 0, "skewed load never rebalanced");
        assert_eq!(balanced.admitted + balanced.rejected, frozen.offered);
        // Stealing narrows peak-utilisation skew vs the frozen placement.
        let skew = |r: &FleetReport| {
            let peaks: Vec<f64> = r.shards.iter().map(|s| s.peak_utilization).collect();
            peaks.iter().cloned().fold(0.0f64, f64::max)
                - peaks.iter().cloned().fold(f64::INFINITY, f64::min)
        };
        assert!(
            skew(&balanced) <= skew(&frozen) + 1e-9,
            "rebalance widened skew: {} vs {}",
            skew(&balanced),
            skew(&frozen)
        );
        // Migration bookkeeping is conserved.
        let migr_in: usize = balanced.shards.iter().map(|s| s.migrations_in).sum();
        assert_eq!(migr_in, balanced.migrations);
    }

    #[test]
    fn churned_sessions_release_capacity_and_truncate_work() {
        let sim = SimConfig::default();
        let library = vec![synth_entry(4, 6, 1e6, 4_000_000, 40_000, &sim)];
        let trace = base_trace(40, 0.8);
        let cfg = FleetConfig {
            min_shards: 1,
            max_shards: 1,
            autoscale: None,
            rebalance: None,
            sim,
            ..FleetConfig::default()
        };
        let churny = run_fleet(&trace, &library, &cfg).unwrap();
        assert!(
            churny.churned_out > 0,
            "0.8 churn produced no zero-budget offers"
        );
        // Churned-out offers never reach a shard.
        assert_eq!(
            churny.admitted + churny.rejected + churny.churned_out,
            churny.offered
        );
        // Admitted-but-departing sessions contribute strictly fewer frames
        // than the same trace without churn.
        let mut calm_trace = trace.clone();
        for a in &mut calm_trace.arrivals {
            a.depart_ns = None;
        }
        let calm = run_fleet(&calm_trace, &library, &cfg).unwrap();
        assert!(churny.frames_served < calm.frames_served);
        // Released capacity admits at least as many sessions as the
        // no-churn run (the single shard refills as leavers free room).
        assert!(churny.admitted + churny.churned_out >= calm.admitted);
    }
}
