//! # vrd-serve — multi-stream serving for the VR-DANN pipeline
//!
//! The paper's agent unit schedules NN-L/NN-S work for *one* video
//! (§IV-C's lagged queue switching). This crate extends that idea to a
//! production shape: N concurrent recognition sessions share one NPU, and
//! the scheduler batches same-model work *across* sessions so the expensive
//! NN-L ↔ NN-S weight swaps are amortised over every admitted stream
//! instead of paid per stream.
//!
//! The layer is split along the serving lifecycle:
//!
//! * [`admission`] — deadline-aware admission control: project utilisation
//!   and p99 frame latency from a session's encoded-stream statistics and
//!   reject sessions that would blow a configurable SLO;
//! * [`session`] — one admitted session: a
//!   [`StrictFrameSource`](vrd_codec::StrictFrameSource) +
//!   [`PipelineEngine`](vr_dann::PipelineEngine) advanced incrementally
//!   (the engine's resumable `prime`/`step`/`finish` API) behind a paced
//!   decoder lane that stamps every NPU work item with its hand-over time;
//! * [`sched`] — the shared virtual NPU: replay the merged per-session work
//!   under per-stream FIFO or cross-session lagged batching, with bounded
//!   per-session queues and backpressure, using `vrd-sim`'s cost model for
//!   service and switch times;
//! * [`metrics`] — latency percentile accounting (p50/p95/p99);
//! * [`faults`] — deterministic virtual-NPU fault injection: transient
//!   stalls, per-attempt work-item failures and full-device
//!   crash/recover windows, all counter-hashed so fault patterns are
//!   independent of scheduling order;
//! * [`error`] — the serving-layer error type, with session and
//!   scheduler-clock context on every variant;
//! * [`server`] — the façade tying it together: admit, drive every session
//!   on `vrd-runtime`'s thread pool, schedule under both policies, and
//!   report per-session and global outcomes;
//! * [`loadgen`] — deterministic trace-driven load generation: seeded
//!   Poisson arrivals thinned against bursty/diurnal/spike envelopes,
//!   heterogeneous session shapes, and mid-stream churn;
//! * [`fleet`] — fleet-scale serving: 64+ concurrent sessions placed with
//!   model-affinity across N virtual NPU shards, with skew-triggered work
//!   stealing and an autoscaler that provisions/drains shards (billing
//!   spin-up latency) to hold the SLO under traffic spikes.
//!
//! On top of the plain replay, [`sched::schedule_chaos`] replays the same
//! admitted work against an [`faults::NpuFaultProfile`]: work-item
//! failures retry with bounded exponential backoff, crashed sessions
//! restore from host-side engine checkpoints
//! ([`session::drive_session_checkpointed`]), and a graceful-degradation
//! ladder ([`sched::DegradeLevel`]) trades per-frame fidelity for
//! throughput instead of shedding.
//!
//! Everything is deterministic: the same requests and configuration produce
//! byte-identical reports — fault-injected or not — which is what lets
//! `serve_bench` and `chaos_bench` pin their outputs in CI.

pub mod admission;
pub mod error;
pub mod faults;
pub mod fleet;
pub mod loadgen;
pub mod metrics;
pub mod sched;
pub mod server;
pub mod session;

pub use admission::{
    AdmissionController, AdmissionProjection, RejectReason, SessionDemand, SloConfig,
};
pub use error::{Result, ServeError};
pub use faults::{CrashWindow, NpuFaultKind, NpuFaultProfile};
pub use fleet::{
    run_fleet, AutoscaleConfig, FleetConfig, FleetReport, OfferFate, RebalanceConfig, ShardReport,
    StreamEntry,
};
pub use loadgen::{
    generate, legacy_sweep, Envelope, GopClass, LoadGenConfig, ResClass, SessionArrival,
    SessionShape, TaskKind, TrafficTrace,
};
pub use metrics::LatencyStats;
pub use sched::{
    schedule, schedule_chaos, schedule_sampled, ChaosConfig, ChaosOutcome, DegradationStats,
    DegradeLevel, LadderConfig, RecoveryConfig, SchedConfig, SchedPolicy, ScheduleOutcome,
    SessionChaosStats, SessionSchedStats,
};
pub use server::{admit_and_drive, serve, ServeConfig, ServeReport, SessionReport};
pub use session::{
    drive_session, drive_session_checkpointed, drive_session_pipelined, drive_template,
    drive_template_pipelined, DrivenSession, SessionCheckpoint, SessionSpec, SessionState,
    SessionTemplate, TemplateItem, WorkItem,
};
