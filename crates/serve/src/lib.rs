//! # vrd-serve — multi-stream serving for the VR-DANN pipeline
//!
//! The paper's agent unit schedules NN-L/NN-S work for *one* video
//! (§IV-C's lagged queue switching). This crate extends that idea to a
//! production shape: N concurrent recognition sessions share one NPU, and
//! the scheduler batches same-model work *across* sessions so the expensive
//! NN-L ↔ NN-S weight swaps are amortised over every admitted stream
//! instead of paid per stream.
//!
//! The layer is split along the serving lifecycle:
//!
//! * [`admission`] — deadline-aware admission control: project utilisation
//!   and p99 frame latency from a session's encoded-stream statistics and
//!   reject sessions that would blow a configurable SLO;
//! * [`session`] — one admitted session: a
//!   [`StrictFrameSource`](vrd_codec::StrictFrameSource) +
//!   [`PipelineEngine`](vr_dann::PipelineEngine) advanced incrementally
//!   (the engine's resumable `prime`/`step`/`finish` API) behind a paced
//!   decoder lane that stamps every NPU work item with its hand-over time;
//! * [`sched`] — the shared virtual NPU: replay the merged per-session work
//!   under per-stream FIFO or cross-session lagged batching, with bounded
//!   per-session queues and backpressure, using `vrd-sim`'s cost model for
//!   service and switch times;
//! * [`metrics`] — latency percentile accounting (p50/p95/p99);
//! * [`server`] — the façade tying it together: admit, drive every session
//!   on `vrd-runtime`'s thread pool, schedule under both policies, and
//!   report per-session and global outcomes.
//!
//! Everything is deterministic: the same requests and configuration produce
//! byte-identical reports, which is what lets `serve_bench` pin its output
//! in CI.

pub mod admission;
pub mod metrics;
pub mod sched;
pub mod server;
pub mod session;

pub use admission::{
    AdmissionController, AdmissionProjection, RejectReason, SessionDemand, SloConfig,
};
pub use metrics::LatencyStats;
pub use sched::{schedule, SchedConfig, SchedPolicy, ScheduleOutcome, SessionSchedStats};
pub use server::{serve, ServeConfig, ServeReport, SessionReport};
pub use session::{drive_session, DrivenSession, SessionSpec, SessionState, WorkItem};
