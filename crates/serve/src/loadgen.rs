//! Trace-driven load generation for the fleet layer.
//!
//! The serving benches used to offer a fixed 1→8 sweep of identical
//! sessions; real deployments see nothing of the sort. This module
//! synthesises **deterministic traffic traces**: seeded arrival processes
//! (Poisson thinned against a bursty, diurnal or spike envelope),
//! heterogeneous session shapes (task, resolution class, GOP length,
//! compute mode, pacing) and mid-stream churn (sessions that leave before
//! their stream drains). Every random decision is a counter-based hash of
//! the trace seed and the decision's identity — the same idiom the fault
//! injector uses — so a trace is a pure function of its config: no RNG
//! state threads through generation, and two runs (at any thread count)
//! produce bit-identical traces.
//!
//! A trace says *when sessions arrive and what shape they are*; it does
//! not carry video. The fleet layer resolves each arrival's [`SessionShape`]
//! against a small library of driven stream templates
//! ([`crate::session::SessionTemplate`]) and restamps pacing per arrival,
//! so 64+ concurrent sessions cost the NN compute of a handful of distinct
//! streams.

use vr_dann::ComputeMode;

/// Recognition task a session runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Semantic segmentation (the paper's NN-L/NN-S pipeline).
    Segmentation,
    /// Object detection (the detection-head variant).
    Detection,
}

/// Frame-geometry class of a session's stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResClass {
    /// The suite's standard resolution.
    Std,
    /// A reduced resolution (cheaper NN-L anchors).
    Low,
}

/// GOP-length class of a session's stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GopClass {
    /// The suite's standard GOP.
    Standard,
    /// Short GOPs: more anchors per frame, NN-L-heavier.
    Short,
}

/// The shape attributes of one offered session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionShape {
    /// Recognition task.
    pub task: TaskKind,
    /// Resolution class.
    pub res: ResClass,
    /// GOP class.
    pub gop: GopClass,
    /// NN-S compute mode the session requests.
    pub compute: ComputeMode,
}

impl SessionShape {
    /// The homogeneous legacy shape: standard-resolution segmentation,
    /// standard GOP, full-precision NN-S.
    pub fn standard() -> Self {
        Self {
            task: TaskKind::Segmentation,
            res: ResClass::Std,
            gop: GopClass::Standard,
            compute: ComputeMode::F32Reference,
        }
    }
}

/// One offered session in a traffic trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionArrival {
    /// Offer identity, dense in offer order (= arrival-time order).
    pub id: usize,
    /// Index into the caller's stream library (taken modulo its length).
    pub stream: usize,
    /// Instant the session arrives, in nanoseconds.
    pub arrive_ns: f64,
    /// Inter-frame pacing the session requests, in nanoseconds. `0.0`
    /// means *server-paced* — the legacy sweep profile, where the server
    /// derives pacing from its load factor and the stream's NN-L time.
    pub interval_ns: f64,
    /// `Some(t)`: the session leaves at absolute instant `t` (mid-stream
    /// churn); work after `t` is never offered. `None`: it drains fully.
    pub depart_ns: Option<f64>,
    /// Heterogeneous shape attributes.
    pub shape: SessionShape,
}

/// A deterministic traffic trace: arrivals in time order.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficTrace {
    /// Offered sessions, ascending `arrive_ns` (ties broken by id).
    pub arrivals: Vec<SessionArrival>,
    /// The envelope's reference window, in nanoseconds (diurnal period,
    /// spike placement).
    pub horizon_ns: f64,
}

/// Arrival-intensity envelope over the trace horizon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Envelope {
    /// Constant intensity.
    Flat,
    /// Poisson-bursty: full intensity inside periodic bursts, a quiet
    /// floor between them.
    Bursty {
        /// Burst period as a fraction of the horizon (e.g. `0.25` = four
        /// bursts per horizon).
        period_frac: f64,
        /// Fraction of each period that is burst (the rest is quiet).
        duty: f64,
        /// Intensity between bursts, relative to the burst peak (0..1).
        quiet_level: f64,
    },
    /// Diurnal: raised-cosine day/night cycle, one period per horizon.
    Diurnal {
        /// Night-trough intensity relative to the midday peak (0..1).
        trough_level: f64,
    },
    /// A flash-crowd spike: base intensity everywhere, `factor`× inside
    /// the window — the 4× traffic spike the autoscaler must absorb.
    Spike {
        /// Arrival-rate multiplier inside the spike window.
        factor: f64,
        /// Spike start, as a fraction of the horizon.
        start_frac: f64,
        /// Spike end, as a fraction of the horizon.
        end_frac: f64,
    },
}

impl Envelope {
    /// Intensity at `frac` of the horizon, relative to the base rate.
    /// Periodic envelopes wrap past the horizon; the spike does not recur.
    fn level(&self, frac: f64) -> f64 {
        match *self {
            Envelope::Flat => 1.0,
            Envelope::Bursty {
                period_frac,
                duty,
                quiet_level,
            } => {
                let period = period_frac.max(1e-9);
                let phase = (frac / period).fract();
                if phase < duty.clamp(0.0, 1.0) {
                    1.0
                } else {
                    quiet_level.clamp(0.0, 1.0)
                }
            }
            Envelope::Diurnal { trough_level } => {
                let t = trough_level.clamp(0.0, 1.0);
                let day = frac.fract();
                t + (1.0 - t) * 0.5 * (1.0 - (2.0 * std::f64::consts::PI * day).cos())
            }
            Envelope::Spike {
                factor,
                start_frac,
                end_frac,
            } => {
                if frac >= start_frac && frac < end_frac {
                    factor.max(1.0)
                } else {
                    1.0
                }
            }
        }
    }

    /// The envelope's peak intensity (the thinning normaliser).
    fn peak(&self) -> f64 {
        match *self {
            Envelope::Spike { factor, .. } => factor.max(1.0),
            _ => 1.0,
        }
    }
}

/// Load-generator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadGenConfig {
    /// Trace seed: every arrival instant, shape draw and churn decision is
    /// a pure hash of this.
    pub seed: u64,
    /// Sessions to offer.
    pub sessions: usize,
    /// Distinct streams in the caller's library the trace cycles over.
    pub streams: usize,
    /// Nominal frames per stream (sizes the churn-departure window).
    pub stream_frames: usize,
    /// Base inter-frame pacing, in nanoseconds.
    pub base_interval_ns: f64,
    /// Mean arrival gap at base intensity, in nanoseconds.
    pub mean_interarrival_ns: f64,
    /// Envelope reference window, in nanoseconds.
    pub horizon_ns: f64,
    /// Arrival-intensity envelope.
    pub envelope: Envelope,
    /// Probability an offered session churns out mid-stream.
    pub churn_rate: f64,
    /// Draw heterogeneous shapes and pacing; `false` = every session is
    /// [`SessionShape::standard`] at `base_interval_ns`.
    pub heterogeneous: bool,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        Self {
            seed: 0x5eed_f1ee_7000_0001,
            sessions: 64,
            streams: 6,
            stream_frames: 16,
            base_interval_ns: 2e6,
            mean_interarrival_ns: 1e6,
            horizon_ns: 1e8,
            envelope: Envelope::Flat,
            churn_rate: 0.15,
            heterogeneous: true,
        }
    }
}

// Counter-based draws — the same splitmix64 idiom the fault injector uses,
// with this module's own salts so traces and fault plans never correlate.
const SALT_GAP: u64 = 0x7ace_10ad_0a11;
const SALT_THIN: u64 = 0x7ace_10ad_0a12;
const SALT_STREAM: u64 = 0x7ace_10ad_0a13;
const SALT_SHAPE: u64 = 0x7ace_10ad_0a14;
const SALT_PACE: u64 = 0x7ace_10ad_0a15;
const SALT_CHURN: u64 = 0x7ace_10ad_0a16;
const SALT_DEPART: u64 = 0x7ace_10ad_0a17;

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Counter-based uniform draw in `[0, 1)`: a pure hash of the identifying
/// tuple, so every decision has its own independent coin regardless of
/// generation order.
fn draw(seed: u64, salt: u64, a: u64, b: u64) -> f64 {
    let h = mix(seed
        ^ mix(salt
            .wrapping_add(a.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(b.wrapping_mul(0xc2b2_ae3d_27d4_eb4f))));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Exponential variate with the given mean from a uniform draw.
fn exp_gap(mean_ns: f64, u: f64) -> f64 {
    // 1 − u ∈ (0, 1]; ln of it is ≤ 0, so the gap is ≥ 0 and finite.
    -mean_ns * (1.0 - u).ln()
}

/// Generates a deterministic traffic trace.
///
/// Arrivals are a Poisson process at the envelope's peak rate, thinned to
/// the envelope's local intensity (Lewis–Shedler): candidate instants come
/// from exponential gaps, and a candidate at time `t` is kept with
/// probability `level(t) / peak`. Kept arrivals then draw stream identity,
/// shape, pacing and churn. The candidate counter — not the kept count —
/// salts every draw, so inserting or removing an envelope never shifts the
/// randomness of later decisions.
pub fn generate(cfg: &LoadGenConfig) -> TrafficTrace {
    let peak = cfg.envelope.peak();
    let peak_mean = cfg.mean_interarrival_ns / peak;
    let mut arrivals = Vec::with_capacity(cfg.sessions);
    let mut t = 0.0f64;
    let mut cand = 0u64;
    while arrivals.len() < cfg.sessions {
        t += exp_gap(peak_mean, draw(cfg.seed, SALT_GAP, cand, 0));
        let frac = t / cfg.horizon_ns.max(1.0);
        let keep = draw(cfg.seed, SALT_THIN, cand, 0) < cfg.envelope.level(frac) / peak;
        cand += 1;
        if !keep {
            continue;
        }
        let id = arrivals.len();
        let stream = (draw(cfg.seed, SALT_STREAM, cand, 0) * cfg.streams.max(1) as f64) as usize;
        let (shape, interval_ns) = if cfg.heterogeneous {
            let shape = SessionShape {
                task: if draw(cfg.seed, SALT_SHAPE, cand, 0) < 0.25 {
                    TaskKind::Detection
                } else {
                    TaskKind::Segmentation
                },
                res: if draw(cfg.seed, SALT_SHAPE, cand, 1) < 0.25 {
                    ResClass::Low
                } else {
                    ResClass::Std
                },
                gop: if draw(cfg.seed, SALT_SHAPE, cand, 2) < 0.25 {
                    GopClass::Short
                } else {
                    GopClass::Standard
                },
                compute: if draw(cfg.seed, SALT_SHAPE, cand, 3) < 0.25 {
                    ComputeMode::Int8
                } else {
                    ComputeMode::F32Reference
                },
            };
            // Pacing spread ±: 0.8×..1.6× the base interval.
            let pace = 0.8 + 0.8 * draw(cfg.seed, SALT_PACE, cand, 0);
            (shape, cfg.base_interval_ns * pace)
        } else {
            (SessionShape::standard(), cfg.base_interval_ns)
        };
        let depart_ns = if draw(cfg.seed, SALT_CHURN, cand, 0) < cfg.churn_rate {
            // Uniform over the nominal stream span: early draws model a
            // session that leaves before it is ever served.
            let span = cfg.stream_frames as f64 * interval_ns;
            Some(t + span * draw(cfg.seed, SALT_DEPART, cand, 0))
        } else {
            None
        };
        arrivals.push(SessionArrival {
            id,
            stream,
            arrive_ns: t,
            interval_ns,
            depart_ns,
            shape,
        });
    }
    TrafficTrace {
        arrivals,
        horizon_ns: cfg.horizon_ns,
    }
}

/// The fixed-seed **legacy sweep** profile: the exact offered workload
/// `serve_bench`'s 1→K sweep has always used — `k` simultaneous arrivals at
/// `t = 0`, cycling a `suite_len`-stream library in offer order, standard
/// shape, server-paced (`interval_ns = 0`), no churn. `serve_bench` sources
/// its request mapping from this trace so the sweep and the fleet bench
/// share one definition of "offered load"; its rows stay byte-identical
/// because the mapping is the same `i % suite_len` it always was.
pub fn legacy_sweep(k: usize, suite_len: usize) -> TrafficTrace {
    let arrivals = (0..k)
        .map(|i| SessionArrival {
            id: i,
            stream: i % suite_len.max(1),
            arrive_ns: 0.0,
            interval_ns: 0.0,
            depart_ns: None,
            shape: SessionShape::standard(),
        })
        .collect();
    TrafficTrace {
        arrivals,
        horizon_ns: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_and_time_ordered() {
        let cfg = LoadGenConfig::default();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b, "same config must generate bit-identical traces");
        assert_eq!(a.arrivals.len(), cfg.sessions);
        for (i, arr) in a.arrivals.iter().enumerate() {
            assert_eq!(arr.id, i);
            assert!(arr.stream < cfg.streams);
            assert!(arr.arrive_ns.is_finite() && arr.arrive_ns >= 0.0);
            assert!(arr.interval_ns > 0.0);
            if i > 0 {
                assert!(arr.arrive_ns >= a.arrivals[i - 1].arrive_ns);
            }
            if let Some(d) = arr.depart_ns {
                assert!(d >= arr.arrive_ns);
                assert!(d <= arr.arrive_ns + cfg.stream_frames as f64 * arr.interval_ns);
            }
        }
        // A different seed reshuffles the trace.
        let other = generate(&LoadGenConfig { seed: 99, ..cfg });
        assert_ne!(a, other);
    }

    #[test]
    fn heterogeneity_and_churn_show_up_at_scale() {
        let cfg = LoadGenConfig {
            sessions: 256,
            ..LoadGenConfig::default()
        };
        let trace = generate(&cfg);
        let det = trace
            .arrivals
            .iter()
            .filter(|a| a.shape.task == TaskKind::Detection)
            .count();
        let low = trace
            .arrivals
            .iter()
            .filter(|a| a.shape.res == ResClass::Low)
            .count();
        let short = trace
            .arrivals
            .iter()
            .filter(|a| a.shape.gop == GopClass::Short)
            .count();
        let int8 = trace
            .arrivals
            .iter()
            .filter(|a| a.shape.compute == ComputeMode::Int8)
            .count();
        let churned = trace
            .arrivals
            .iter()
            .filter(|a| a.depart_ns.is_some())
            .count();
        for (name, n) in [
            ("detection", det),
            ("low-res", low),
            ("short-gop", short),
            ("int8", int8),
            ("churn", churned),
        ] {
            assert!(
                n > 0 && n < cfg.sessions,
                "{name}: {n}/{} — attribute never (or always) drawn",
                cfg.sessions
            );
        }
        // Homogeneous mode pins everything to the standard shape.
        let flat = generate(&LoadGenConfig {
            heterogeneous: false,
            churn_rate: 0.0,
            ..cfg
        });
        assert!(flat
            .arrivals
            .iter()
            .all(|a| a.shape == SessionShape::standard()
                && a.interval_ns == cfg.base_interval_ns
                && a.depart_ns.is_none()));
    }

    #[test]
    fn envelopes_shape_arrival_density() {
        let base = LoadGenConfig {
            sessions: 400,
            churn_rate: 0.0,
            heterogeneous: false,
            ..LoadGenConfig::default()
        };
        // A 4× spike in the middle 20% of the horizon concentrates
        // arrivals there vs the flat trace.
        let spike = generate(&LoadGenConfig {
            envelope: Envelope::Spike {
                factor: 4.0,
                start_frac: 0.4,
                end_frac: 0.6,
            },
            ..base
        });
        let flat = generate(&LoadGenConfig {
            envelope: Envelope::Flat,
            ..base
        });
        let in_window = |t: &TrafficTrace| {
            t.arrivals
                .iter()
                .filter(|a| {
                    let f = a.arrive_ns / t.horizon_ns;
                    (0.4..0.6).contains(&f)
                })
                .count()
        };
        assert!(
            in_window(&spike) > 2 * in_window(&flat).max(1),
            "spike window density {} vs flat {}",
            in_window(&spike),
            in_window(&flat)
        );
        // The spike window sees gaps ~4× tighter than the base rate, so
        // the same session count also finishes arriving sooner.
        let last = |t: &TrafficTrace| t.arrivals.last().unwrap().arrive_ns;
        assert!(last(&spike) < last(&flat));

        // Bursty and diurnal envelopes thin the quiet stretches.
        for env in [
            Envelope::Bursty {
                period_frac: 0.25,
                duty: 0.4,
                quiet_level: 0.1,
            },
            Envelope::Diurnal { trough_level: 0.2 },
        ] {
            let t = generate(&LoadGenConfig {
                envelope: env,
                ..base
            });
            assert_eq!(t.arrivals.len(), base.sessions);
            // Thinning stretches the same count over a longer window.
            assert!(last(&t) > last(&flat), "{env:?} did not thin arrivals");
        }
    }

    #[test]
    fn legacy_sweep_matches_the_historical_mapping() {
        for k in [1usize, 2, 4, 6, 8] {
            let trace = legacy_sweep(k, 6);
            assert_eq!(trace.arrivals.len(), k);
            for (i, a) in trace.arrivals.iter().enumerate() {
                // The exact request mapping serve_bench has always used.
                assert_eq!(a.stream, i % 6);
                assert_eq!(a.arrive_ns, 0.0);
                assert_eq!(a.interval_ns, 0.0, "legacy pacing is server-derived");
                assert_eq!(a.depart_ns, None);
                assert_eq!(a.shape, SessionShape::standard());
            }
        }
        assert_eq!(legacy_sweep(3, 0).arrivals[2].stream, 0);
    }
}
