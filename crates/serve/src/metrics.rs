//! Latency accounting: nearest-rank percentile summaries over served
//! frames. Shared by the scheduler (measured latencies) and the admission
//! controller's reporting.

/// Summary statistics over a set of per-frame latencies, in nanoseconds.
///
/// Percentiles use the nearest-rank method (the smallest sample ≥ the
/// requested fraction of the distribution), so every reported figure is an
/// actual observed latency and the summary is exactly reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyStats {
    /// Number of samples summarised.
    pub count: usize,
    /// Arithmetic mean.
    pub mean_ns: f64,
    /// Median (50th percentile).
    pub p50_ns: f64,
    /// 95th percentile.
    pub p95_ns: f64,
    /// 99th percentile.
    pub p99_ns: f64,
    /// Largest sample.
    pub max_ns: f64,
}

impl LatencyStats {
    /// Summarises `samples` (all-zero for an empty input).
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut s = samples.to_vec();
        s.sort_unstable_by(f64::total_cmp);
        let n = s.len();
        let rank = |p: f64| -> f64 {
            let k = (p / 100.0 * n as f64).ceil() as usize;
            s[k.clamp(1, n) - 1]
        };
        Self {
            count: n,
            mean_ns: s.iter().sum::<f64>() / n as f64,
            p50_ns: rank(50.0),
            p95_ns: rank(95.0),
            p99_ns: rank(99.0),
            max_ns: s[n - 1],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_all_zero() {
        let st = LatencyStats::from_samples(&[]);
        assert_eq!(st, LatencyStats::default());
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        let st = LatencyStats::from_samples(&samples);
        assert_eq!(st.count, 100);
        assert_eq!(st.p50_ns, 50.0);
        assert_eq!(st.p95_ns, 95.0);
        assert_eq!(st.p99_ns, 99.0);
        assert_eq!(st.max_ns, 100.0);
        assert!((st.mean_ns - 50.5).abs() < 1e-9);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let st = LatencyStats::from_samples(&[7.0]);
        assert_eq!(
            (st.p50_ns, st.p95_ns, st.p99_ns, st.max_ns),
            (7.0, 7.0, 7.0, 7.0)
        );
    }

    #[test]
    fn order_does_not_matter() {
        let a = LatencyStats::from_samples(&[3.0, 1.0, 2.0]);
        let b = LatencyStats::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }
}
