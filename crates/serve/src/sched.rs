//! The shared virtual NPU: one accelerator, many sessions.
//!
//! Replays the stamped work of every admitted session through a
//! deterministic event loop timed by `vrd-sim`'s cost model
//! ([`SimConfig::npu_ops_per_ns`] for service,
//! [`SimConfig::switch_to_large_ns`]/[`SimConfig::switch_to_small_ns`] for
//! NN-L ↔ NN-S weight swaps). Two policies share the loop:
//!
//! * [`SchedPolicy::Fifo`] — per-stream FIFO: always serve the globally
//!   oldest handed-over item, switching models whenever two consecutive
//!   items disagree. This is what N independent pipelines time-sharing one
//!   NPU degenerate to, and the baseline every improvement is measured
//!   against.
//! * [`SchedPolicy::Batch`] — cross-session lagged switching: the paper's
//!   `b_Q` idea (§IV-C) lifted across streams. Among the items already
//!   handed over, prefer ones matching the currently resident model, so
//!   same-model work from *different* sessions coalesces into one
//!   residency; a batch cap (default: the paper's 24-entry `b_Q`) bounds
//!   how long opposite-model work can be deferred, and the scheduler is
//!   work-conserving — it never idles waiting for a preferred item.
//!
//! Each session owns a bounded queue between its decoder lane and the NPU
//! (backpressure: a full queue delays the hand-over to the next serve
//! completion, counted in [`ScheduleOutcome::decoder_stalls`]). Frame
//! latency is measured arrival → NPU completion, so decode, queueing,
//! switching and service all show up in the percentiles.

use crate::metrics::LatencyStats;
use crate::session::DrivenSession;
use std::collections::VecDeque;
use vrd_sim::SimConfig;

/// Which serving discipline the shared NPU runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Globally oldest item first; switch whenever the model differs.
    Fifo,
    /// Prefer items matching the resident model (cross-session batching),
    /// bounded by the batch cap.
    Batch,
}

impl std::fmt::Display for SchedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::Batch => "batch",
        })
    }
}

/// Shared-NPU scheduling knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedConfig {
    /// Bounded per-session queue between decoder lane and NPU (mirrors the
    /// agent unit's 8-entry `ip_Q`).
    pub queue_capacity: usize,
    /// Consecutive same-model serves [`SchedPolicy::Batch`] may run while
    /// opposite-model work waits (mirrors the 24-entry `b_Q`).
    pub batch_cap: usize,
    /// Optional shedding deadline: a frame still unserved this long after
    /// its arrival is dropped instead of served (`None` = serve everything).
    pub shed_after_ns: Option<f64>,
}

impl Default for SchedConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 8,
            batch_cap: 24,
            shed_after_ns: None,
        }
    }
}

/// Per-session outcome of one schedule replay.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSchedStats {
    /// Index into the admitted set.
    pub session: usize,
    /// Frames the NPU completed for this session.
    pub frames_served: usize,
    /// Frames dropped by the shedding deadline.
    pub frames_shed: usize,
    /// Arrival → completion latency summary.
    pub latency: LatencyStats,
}

/// Global outcome of replaying the merged sessions under one policy.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleOutcome {
    /// The policy replayed.
    pub policy: SchedPolicy,
    /// Frames completed across all sessions.
    pub frames_served: usize,
    /// Frames dropped by the shedding deadline.
    pub frames_shed: usize,
    /// NN-L ↔ NN-S model switches paid.
    pub switches: usize,
    /// Time lost to those switches.
    pub switch_ns: f64,
    /// Time the NPU spent computing.
    pub busy_ns: f64,
    /// Completion time of the last served frame.
    pub makespan_ns: f64,
    /// Largest total queue depth observed across serve events.
    pub max_queue_depth: usize,
    /// Mean total queue depth over serve events.
    pub mean_queue_depth: f64,
    /// Hand-overs delayed because the session's queue was full
    /// (backpressure onto the decoder lane).
    pub decoder_stalls: usize,
    /// Arrival → completion latency summary over every served frame.
    pub latency: LatencyStats,
    /// Per-session breakdown, admitted order.
    pub per_session: Vec<SessionSchedStats>,
}

impl ScheduleOutcome {
    /// Fraction of the makespan the NPU spent computing (0 when empty).
    pub fn utilization(&self) -> f64 {
        if self.makespan_ns > 0.0 {
            self.busy_ns / self.makespan_ns
        } else {
            0.0
        }
    }
}

/// One session's bounded queue state inside the event loop.
struct SessionQueue<'a> {
    items: &'a [crate::session::WorkItem],
    /// Next item not yet handed over.
    next: usize,
    /// (item index, hand-over time) — front is the only servable entry;
    /// sessions are strictly in decode order.
    queue: VecDeque<(usize, f64)>,
}

impl SessionQueue<'_> {
    /// Fills free slots up to `cap`. `now` is the instant slots freed; a
    /// hand-over pushed past its decoder-lane `ready_ns` is a stall.
    fn refill(&mut self, now: f64, cap: usize, stalls: &mut usize) {
        while self.queue.len() < cap && self.next < self.items.len() {
            let ready = self.items[self.next].ready_ns;
            let entry = ready.max(now);
            if entry > ready {
                *stalls += 1;
            }
            self.queue.push_back((self.next, entry));
            self.next += 1;
        }
    }
}

/// Replays the merged work of `sessions` through the shared NPU under
/// `policy`. Deterministic: ties between sessions break by admitted index.
pub fn schedule(
    sessions: &[DrivenSession],
    policy: SchedPolicy,
    cfg: &SchedConfig,
    sim: &SimConfig,
) -> ScheduleOutcome {
    let cap = cfg.queue_capacity.max(1);
    let mut queues: Vec<SessionQueue> = sessions
        .iter()
        .map(|s| SessionQueue {
            items: &s.items,
            next: 0,
            queue: VecDeque::new(),
        })
        .collect();
    let mut decoder_stalls = 0usize;
    for q in &mut queues {
        q.refill(0.0, cap, &mut decoder_stalls);
    }

    let ops_per_ns = sim.npu_ops_per_ns();
    let mut t_npu = 0.0f64;
    let mut resident_large: Option<bool> = None;
    let mut run_len = 0usize;
    let mut switches = 0usize;
    let mut switch_ns = 0.0f64;
    let mut busy_ns = 0.0f64;
    let mut served = 0usize;
    let mut shed = 0usize;
    let mut latencies: Vec<f64> = Vec::new();
    let mut lat_per: Vec<Vec<f64>> = vec![Vec::new(); sessions.len()];
    let mut served_per = vec![0usize; sessions.len()];
    let mut shed_per = vec![0usize; sessions.len()];
    let mut max_depth = 0usize;
    let mut depth_sum = 0usize;
    let mut depth_events = 0usize;

    // Each pass serves (or sheds) one item; done when all queues are empty.
    // The loop condition finds the earliest hand-over among the queue fronts.
    while let Some(min_entry) = queues
        .iter()
        .filter_map(|q| q.queue.front().map(|&(_, e)| e))
        .min_by(|a, b| a.total_cmp(b))
    {
        let t_now = t_npu.max(min_entry);

        // Items already handed over at t_now; non-empty by construction.
        let oldest = |pred: &dyn Fn(bool) -> bool| -> Option<(usize, usize, f64)> {
            queues
                .iter()
                .enumerate()
                .filter_map(|(s, q)| {
                    let &(i, entry) = q.queue.front()?;
                    (entry <= t_now && pred(q.items[i].uses_large_model)).then_some((s, i, entry))
                })
                .min_by(|a, b| a.2.total_cmp(&b.2).then(a.0.cmp(&b.0)))
        };
        let any = |_: bool| true;
        let (s, i, _entry) = match policy {
            SchedPolicy::Fifo => oldest(&any),
            SchedPolicy::Batch => {
                let same = |m: bool| Some(m) == resident_large;
                let other = |m: bool| Some(m) != resident_large;
                if run_len >= cfg.batch_cap {
                    // Starvation bound hit: the oldest deferred
                    // opposite-model item goes next (if any waits).
                    oldest(&other).or_else(|| oldest(&any))
                } else {
                    oldest(&same).or_else(|| oldest(&any))
                }
            }
        }
        .expect("an item is handed over at t_now by construction");

        let item = &queues[s].items[i];
        // Past its shedding deadline: drop without occupying the NPU.
        if let Some(d) = cfg.shed_after_ns {
            if item.arrival_ns + d < t_now {
                queues[s].queue.pop_front();
                queues[s].refill(t_now, cap, &mut decoder_stalls);
                shed += 1;
                shed_per[s] += 1;
                continue;
            }
        }

        let mut start = t_now;
        if resident_large != Some(item.uses_large_model) {
            let cost = if item.uses_large_model {
                sim.switch_to_large_ns()
            } else {
                sim.switch_to_small_ns()
            };
            start += cost;
            switch_ns += cost;
            switches += 1;
            resident_large = Some(item.uses_large_model);
            run_len = 0;
        }
        let service = item.ops as f64 / ops_per_ns;
        let finish = start + service;
        busy_ns += service;
        run_len += 1;
        served += 1;
        served_per[s] += 1;
        let latency = finish - item.arrival_ns;
        latencies.push(latency);
        lat_per[s].push(latency);
        queues[s].queue.pop_front();
        queues[s].refill(finish, cap, &mut decoder_stalls);
        t_npu = finish;

        let depth: usize = queues.iter().map(|q| q.queue.len()).sum();
        max_depth = max_depth.max(depth);
        depth_sum += depth;
        depth_events += 1;
    }

    let per_session = sessions
        .iter()
        .enumerate()
        .map(|(s, sess)| SessionSchedStats {
            session: sess.session,
            frames_served: served_per[s],
            frames_shed: shed_per[s],
            latency: LatencyStats::from_samples(&lat_per[s]),
        })
        .collect();
    ScheduleOutcome {
        policy,
        frames_served: served,
        frames_shed: shed,
        switches,
        switch_ns,
        busy_ns,
        makespan_ns: t_npu,
        max_queue_depth: max_depth,
        mean_queue_depth: if depth_events > 0 {
            depth_sum as f64 / depth_events as f64
        } else {
            0.0
        },
        decoder_stalls,
        latency: LatencyStats::from_samples(&latencies),
        per_session,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{DrivenSession, WorkItem};
    use vrd_codec::FrameType;

    /// A synthetic session alternating one NN-L anchor with `b_per_anchor`
    /// NN-S frames, paced at `interval` ns starting at `offset` ns.
    fn synth_session_at(
        session: usize,
        groups: usize,
        b_per_anchor: usize,
        interval: f64,
        offset: f64,
    ) -> DrivenSession {
        let mut items = Vec::new();
        let mut k = 0usize;
        for _ in 0..groups {
            for j in 0..=b_per_anchor {
                let arrival = offset + k as f64 * interval;
                items.push(WorkItem {
                    session,
                    idx: k,
                    display: k as u32,
                    ftype: if j == 0 { FrameType::I } else { FrameType::B },
                    ops: if j == 0 { 4_000_000_000 } else { 1_000_000 },
                    uses_large_model: j == 0,
                    arrival_ns: arrival,
                    ready_ns: arrival + 1_000.0,
                });
                k += 1;
            }
        }
        DrivenSession {
            name: format!("synth-{session}"),
            session,
            frames: items.len(),
            peak_live_frames: 2,
            total_ops: items.iter().map(|i| i.ops).sum(),
            switches_in_order: 2 * groups,
            isolated_ns: 0.0,
            items,
        }
    }

    /// [`synth_session_at`] with sessions staggered at arbitrary (anchor
    /// phase-spreading) offsets, like real independently-started streams.
    fn synth_session(
        session: usize,
        groups: usize,
        b_per_anchor: usize,
        interval: f64,
    ) -> DrivenSession {
        synth_session_at(
            session,
            groups,
            b_per_anchor,
            interval,
            session as f64 * 1.3 * interval,
        )
    }

    fn sim() -> SimConfig {
        SimConfig::default()
    }

    #[test]
    fn single_session_policies_agree() {
        let sessions = vec![synth_session(0, 4, 3, 2e6)];
        let cfg = SchedConfig::default();
        let fifo = schedule(&sessions, SchedPolicy::Fifo, &cfg, &sim());
        let batch = schedule(&sessions, SchedPolicy::Batch, &cfg, &sim());
        // One stream leaves nothing to batch across: identical schedules.
        assert_eq!(fifo.frames_served, batch.frames_served);
        assert_eq!(fifo.switches, batch.switches);
        assert_eq!(fifo.latency, batch.latency);
    }

    #[test]
    fn batching_saves_switches_across_sessions() {
        // An interval tight enough that FIFO's per-anchor switch pairs
        // overload the NPU while compute alone fits — the regime where a
        // backlog forms and cross-session batching has choices to make.
        let sessions: Vec<DrivenSession> = (0..4).map(|s| synth_session(s, 4, 3, 1e6)).collect();
        let cfg = SchedConfig::default();
        let fifo = schedule(&sessions, SchedPolicy::Fifo, &cfg, &sim());
        let batch = schedule(&sessions, SchedPolicy::Batch, &cfg, &sim());
        assert_eq!(fifo.frames_served, 4 * 16);
        assert_eq!(batch.frames_served, 4 * 16);
        assert!(
            batch.switches < fifo.switches,
            "batching should amortise switches: {} vs {}",
            batch.switches,
            fifo.switches
        );
        assert!(batch.switch_ns < fifo.switch_ns);
        assert!(
            batch.latency.p99_ns < fifo.latency.p99_ns,
            "batching should cut p99 under contention: {} vs {}",
            batch.latency.p99_ns,
            fifo.latency.p99_ns
        );
        assert!(batch.makespan_ns < fifo.makespan_ns);
    }

    #[test]
    fn schedules_are_deterministic() {
        let sessions: Vec<DrivenSession> = (0..3).map(|s| synth_session(s, 3, 2, 1.5e6)).collect();
        let cfg = SchedConfig::default();
        let a = schedule(&sessions, SchedPolicy::Batch, &cfg, &sim());
        let b = schedule(&sessions, SchedPolicy::Batch, &cfg, &sim());
        assert_eq!(a, b);
    }

    #[test]
    fn bounded_queue_backpressures_the_decoder() {
        // A tiny queue forces hand-overs to wait on serve completions.
        let sessions = vec![synth_session(0, 6, 5, 1_000.0)];
        let cfg = SchedConfig {
            queue_capacity: 1,
            ..SchedConfig::default()
        };
        let out = schedule(&sessions, SchedPolicy::Fifo, &cfg, &sim());
        assert_eq!(out.frames_served, 36);
        assert!(out.decoder_stalls > 0, "expected backpressure stalls");
        assert!(out.max_queue_depth <= 1);
    }

    #[test]
    fn batch_cap_bounds_large_model_starvation() {
        // One session is pure NN-S work; another's anchors must still get
        // served within the cap.
        let mut nns_only = synth_session(0, 1, 60, 10_000.0);
        for item in &mut nns_only.items {
            item.uses_large_model = false;
            item.ops = 1_000_000;
        }
        let anchors = synth_session(1, 3, 0, 50_000.0);
        let cfg = SchedConfig {
            batch_cap: 4,
            ..SchedConfig::default()
        };
        let out = schedule(&[nns_only, anchors], SchedPolicy::Batch, &cfg, &sim());
        assert_eq!(out.frames_served, 61 + 3);
        // Every anchor was eventually served despite the NN-S flood.
        assert_eq!(out.per_session[1].frames_served, 3);
    }

    #[test]
    fn shedding_deadline_drops_late_frames() {
        let sessions: Vec<DrivenSession> = (0..4).map(|s| synth_session(s, 4, 3, 100.0)).collect();
        let cfg = SchedConfig {
            shed_after_ns: Some(2e6),
            ..SchedConfig::default()
        };
        let out = schedule(&sessions, SchedPolicy::Fifo, &cfg, &sim());
        assert!(out.frames_shed > 0, "overload should shed");
        assert_eq!(out.frames_served + out.frames_shed, 4 * 16);
        // A served frame waited at most the deadline before starting, so
        // its latency is bounded by deadline + one switch + its service.
        let bound = 2e6 + sim().switch_to_large_ns() + 4e9 / sim().npu_ops_per_ns() + 1.0;
        assert!(
            out.latency.max_ns < bound,
            "{} >= {bound}",
            out.latency.max_ns
        );
    }
}
