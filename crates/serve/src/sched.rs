//! The shared virtual NPU: one accelerator, many sessions.
//!
//! Replays the stamped work of every admitted session through a
//! deterministic event loop timed by `vrd-sim`'s cost model
//! ([`SimConfig::npu_ops_per_ns`] for service,
//! [`SimConfig::switch_to_large_ns`]/[`SimConfig::switch_to_small_ns`] for
//! NN-L ↔ NN-S weight swaps). Two policies share the loop:
//!
//! * [`SchedPolicy::Fifo`] — per-stream FIFO: always serve the globally
//!   oldest handed-over item, switching models whenever two consecutive
//!   items disagree. This is what N independent pipelines time-sharing one
//!   NPU degenerate to, and the baseline every improvement is measured
//!   against.
//! * [`SchedPolicy::Batch`] — cross-session lagged switching: the paper's
//!   `b_Q` idea (§IV-C) lifted across streams. Among the items already
//!   handed over, prefer ones matching the currently resident model, so
//!   same-model work from *different* sessions coalesces into one
//!   residency; a batch cap (default: the paper's 24-entry `b_Q`) bounds
//!   how long opposite-model work can be deferred, and the scheduler is
//!   work-conserving — it never idles waiting for a preferred item.
//!
//! Each session owns a bounded queue between its decoder lane and the NPU
//! (backpressure: a full queue delays the hand-over to the next serve
//! completion, counted in [`ScheduleOutcome::decoder_stalls`]). Frame
//! latency is measured arrival → NPU completion, so decode, queueing,
//! switching and service all show up in the percentiles.
//!
//! ## Fault-tolerant replays
//!
//! [`schedule_chaos`] runs the *same* event loop against a deterministic
//! [`NpuFaultProfile`] plus a [`RecoveryConfig`]:
//!
//! * **work-item failures** are retried in place with bounded exponential
//!   backoff until the retry budget runs out;
//! * **transient stalls** stretch one attempt's service time;
//! * **full-NPU crashes** ([`CrashWindow`]) void the in-flight attempt and
//!   every device-resident hand-over (the bounded queues mirror the agent
//!   unit's `ip_Q`/`b_Q`, which live next to the NPU). With
//!   [`RecoveryConfig::checkpoint_restore`] the affected sessions resume
//!   from their host-side engine checkpoints after the outage, paying
//!   [`RecoveryConfig::restore_penalty_ns`]; without it they are lost —
//!   the PR-4 behaviour.
//! * the **degradation ladder** ([`LadderConfig`]) replaces shed-only
//!   pressure handling: a backlogged session steps down
//!   [`DegradeLevel::Full`] → [`DegradeLevel::Int8`] →
//!   [`DegradeLevel::SkipRefine`] → [`DegradeLevel::CopyForward`], where
//!   int8 divides NN-S service by [`vrd_sim::NpuConfig::int8_speedup`] and
//!   the last two rungs are agent-unit-only (raw reconstruction /
//!   copy-forward of the nearest reference mask — zero NPU occupancy),
//!   then steps back up once its queue wait stays short. Deadline misses
//!   and exhausted retries deliver a copy-forward frame instead of
//!   dropping it. The ladder keys its thresholds off the shedding
//!   deadline, so it is dormant when [`SchedConfig::shed_after_ns`] is
//!   `None`.
//!
//! A [`NpuFaultProfile::none`] chaos replay is **byte-identical** to the
//! plain [`schedule`] replay: both run one loop, and the fault branches
//! change no arithmetic when quiet. Fault draws are counter-hashed per
//! `(session, item, attempt)`, so Fifo and Batch replays of the same
//! profile see the same faults on the same items.

use crate::error::{Result, ServeError};
use crate::faults::{CrashWindow, NpuFaultProfile};
use crate::metrics::LatencyStats;
use crate::session::DrivenSession;
use std::collections::VecDeque;
use vr_dann::ComputeMode;
use vrd_sim::SimConfig;

/// Which serving discipline the shared NPU runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Globally oldest item first; switch whenever the model differs.
    Fifo,
    /// Prefer items matching the resident model (cross-session batching),
    /// bounded by the batch cap.
    Batch,
}

impl std::fmt::Display for SchedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::Batch => "batch",
        })
    }
}

/// Shared-NPU scheduling knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedConfig {
    /// Bounded per-session queue between decoder lane and NPU (mirrors the
    /// agent unit's 8-entry `ip_Q`).
    pub queue_capacity: usize,
    /// Consecutive same-model serves [`SchedPolicy::Batch`] may run while
    /// opposite-model work waits (mirrors the 24-entry `b_Q`).
    pub batch_cap: usize,
    /// Optional shedding deadline: a frame still unserved this long after
    /// its arrival is dropped instead of served (`None` = serve everything).
    /// Under a chaos replay with a ladder, the miss is delivered as a
    /// copy-forward frame instead of dropped.
    pub shed_after_ns: Option<f64>,
    /// Instant the NPU comes online (0 = always on). The fleet layer sets
    /// this to a shard's creation instant plus its spin-up cost
    /// ([`vrd_sim::SimConfig::shard_spinup_ns`]), so work handed to a
    /// freshly provisioned shard queues until the virtual device is up —
    /// autoscaling pays its provisioning latency on the same clock
    /// everything else runs on.
    pub npu_available_ns: f64,
}

impl Default for SchedConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 8,
            batch_cap: 24,
            shed_after_ns: None,
            npu_available_ns: 0.0,
        }
    }
}

/// The graceful-degradation ladder, worst rung last. A session serves NN-S
/// frames at its current rung; NN-L anchors always run in full precision
/// (the references the whole GOP leans on are not where quality is shaved).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradeLevel {
    /// Full-precision NN-S refinement.
    Full = 0,
    /// Int8 NN-S refinement: same mask pipeline, service time divided by
    /// [`vrd_sim::NpuConfig::int8_speedup`].
    Int8 = 1,
    /// Skip NN-S refinement: emit the raw agent-unit reconstruction.
    /// Agent-unit-only — zero NPU occupancy.
    SkipRefine = 2,
    /// Copy the nearest reference mask forward. Agent-unit-only.
    CopyForward = 3,
}

impl DegradeLevel {
    /// Number of rungs.
    pub const COUNT: usize = 4;

    /// Index into per-level counters.
    pub fn index(self) -> usize {
        self as usize
    }

    /// One rung worse (saturating).
    pub fn down(self) -> Self {
        match self {
            DegradeLevel::Full => DegradeLevel::Int8,
            DegradeLevel::Int8 => DegradeLevel::SkipRefine,
            _ => DegradeLevel::CopyForward,
        }
    }

    /// One rung better (saturating).
    pub fn up(self) -> Self {
        match self {
            DegradeLevel::CopyForward => DegradeLevel::SkipRefine,
            DegradeLevel::SkipRefine => DegradeLevel::Int8,
            _ => DegradeLevel::Full,
        }
    }
}

impl std::fmt::Display for DegradeLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DegradeLevel::Full => "full",
            DegradeLevel::Int8 => "int8",
            DegradeLevel::SkipRefine => "skip-refine",
            DegradeLevel::CopyForward => "copy-forward",
        })
    }
}

/// Ladder transition thresholds, as fractions of the shedding deadline.
/// The signal is a frame's *age* (service instant − arrival) — the same
/// basis the shedding watchdog uses — so the ladder reacts to real
/// deadline pressure even when bounded queues hide the backlog behind
/// hand-over backpressure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderConfig {
    /// Frame age above `downgrade_wait_frac × deadline` steps the session
    /// one rung down.
    pub downgrade_wait_frac: f64,
    /// Frame age at or below `upgrade_wait_frac × deadline` counts toward
    /// the upgrade streak.
    pub upgrade_wait_frac: f64,
    /// Consecutive young serves required before stepping back up.
    pub upgrade_streak: usize,
}

impl Default for LadderConfig {
    fn default() -> Self {
        Self {
            downgrade_wait_frac: 0.5,
            upgrade_wait_frac: 0.125,
            upgrade_streak: 8,
        }
    }
}

/// Recovery machinery knobs for a chaos replay.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryConfig {
    /// Total service attempts allowed per work item (≥ 1).
    pub max_attempts: u32,
    /// First retry backoff; doubles per failure.
    pub backoff_base_ns: f64,
    /// Backoff ceiling.
    pub backoff_cap_ns: f64,
    /// Restore crashed sessions from host-side engine checkpoints instead
    /// of losing them.
    pub checkpoint_restore: bool,
    /// Cost of one checkpoint restore: re-prime the engine and replay the
    /// O(GOP) mask window. Defaults to roughly one NN-L weight refill.
    pub restore_penalty_ns: f64,
    /// Degradation ladder; `None` = shed-only pressure handling.
    pub ladder: Option<LadderConfig>,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff_base_ns: 50_000.0,
            backoff_cap_ns: 800_000.0,
            checkpoint_restore: true,
            restore_penalty_ns: 800_000.0,
            ladder: Some(LadderConfig::default()),
        }
    }
}

impl RecoveryConfig {
    /// The PR-4 baseline: no retries survive (single attempt), no
    /// checkpoints, no ladder — overload sheds and crashes kill.
    pub fn shed_only() -> Self {
        Self {
            max_attempts: 1,
            checkpoint_restore: false,
            ladder: None,
            ..Self::default()
        }
    }

    /// Backoff before failure number `k` (1-based) is retried.
    fn backoff_ns(&self, k: u32) -> f64 {
        (self.backoff_base_ns * 2f64.powi(k.saturating_sub(1).min(62) as i32))
            .min(self.backoff_cap_ns)
    }
}

/// Everything a chaos replay needs besides the plain scheduling knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// The deterministic fault plan.
    pub faults: NpuFaultProfile,
    /// What the serving layer does about it.
    pub recovery: RecoveryConfig,
}

/// Ladder and retry activity of one session across a chaos replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradationStats {
    /// Rungs stepped down.
    pub downgrades: usize,
    /// Rungs stepped back up.
    pub upgrades: usize,
    /// Delivered frames by the rung they were served at.
    pub frames_at_level: [usize; DegradeLevel::COUNT],
    /// Failed attempts that were retried.
    pub retries: usize,
    /// Items whose retry budget ran out.
    pub retry_exhausted: usize,
    /// Deadline misses delivered as copy-forward instead of shed.
    pub watchdog_degraded: usize,
}

/// Per-session outcome of one schedule replay.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSchedStats {
    /// Index into the admitted set.
    pub session: usize,
    /// Frames the NPU completed for this session.
    pub frames_served: usize,
    /// Frames dropped by the shedding deadline.
    pub frames_shed: usize,
    /// Arrival → completion latency summary.
    pub latency: LatencyStats,
}

/// Per-session outcome of one chaos replay.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionChaosStats {
    /// Index into the admitted set.
    pub session: usize,
    /// Frames delivered at the session's own fidelity.
    pub frames_full: usize,
    /// Frames delivered below the session's own fidelity.
    pub frames_degraded: usize,
    /// Frames dropped by the shedding deadline.
    pub frames_shed: usize,
    /// Frames never delivered because the session died in a crash.
    pub frames_lost: usize,
    /// The session died in a crash and was not restored.
    pub lost: bool,
    /// Checkpoint restores this session paid.
    pub restores: usize,
    /// Ladder and retry activity.
    pub degradation: DegradationStats,
    /// Arrival → delivery latency over delivered frames.
    pub latency: LatencyStats,
}

/// Global outcome of replaying the merged sessions under one policy.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleOutcome {
    /// The policy replayed.
    pub policy: SchedPolicy,
    /// Frames completed across all sessions.
    pub frames_served: usize,
    /// Frames dropped by the shedding deadline.
    pub frames_shed: usize,
    /// NN-L ↔ NN-S model switches paid.
    pub switches: usize,
    /// Time lost to those switches.
    pub switch_ns: f64,
    /// Time the NPU spent computing.
    pub busy_ns: f64,
    /// Completion time of the last served frame.
    pub makespan_ns: f64,
    /// Largest total queue depth observed across serve events.
    pub max_queue_depth: usize,
    /// Mean total queue depth over serve events.
    pub mean_queue_depth: f64,
    /// Hand-overs delayed because the session's queue was full
    /// (backpressure onto the decoder lane).
    pub decoder_stalls: usize,
    /// Arrival → completion latency summary over every served frame.
    pub latency: LatencyStats,
    /// Per-session breakdown, admitted order.
    pub per_session: Vec<SessionSchedStats>,
}

impl ScheduleOutcome {
    /// Fraction of the makespan the NPU spent computing (0 when empty).
    pub fn utilization(&self) -> f64 {
        if self.makespan_ns > 0.0 {
            self.busy_ns / self.makespan_ns
        } else {
            0.0
        }
    }
}

/// Global outcome of one chaos replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosOutcome {
    /// The policy replayed.
    pub policy: SchedPolicy,
    /// Work items across all admitted sessions.
    pub frames_offered: usize,
    /// Frames delivered at their session's own fidelity.
    pub frames_full: usize,
    /// Frames delivered degraded (ladder rung, watchdog copy-forward, or
    /// retry-budget exhaustion).
    pub frames_degraded: usize,
    /// Frames dropped by the shedding deadline (shed-only recovery).
    pub frames_shed: usize,
    /// Frames never delivered because their session died in a crash.
    pub frames_lost: usize,
    /// Delivered frames by ladder rung.
    pub frames_at_level: [usize; DegradeLevel::COUNT],
    /// Sessions killed by crashes (checkpoint restore off).
    pub sessions_lost: usize,
    /// Checkpoint restores paid across sessions and crashes.
    pub session_restores: usize,
    /// Failed attempts that were retried.
    pub retries: usize,
    /// Items whose retry budget ran out.
    pub retry_exhausted: usize,
    /// Deadline misses delivered as copy-forward instead of shed.
    pub watchdog_degraded: usize,
    /// Attempts that drew a transient stall.
    pub stalls: usize,
    /// Time added by those stalls.
    pub stall_ns: f64,
    /// Crash windows the replay ran into.
    pub crashes: usize,
    /// Service time burnt by failed attempts and crash-voided work.
    pub wasted_ns: f64,
    /// NN-L ↔ NN-S model switches paid.
    pub switches: usize,
    /// Time lost to those switches.
    pub switch_ns: f64,
    /// Time the NPU spent computing work that completed.
    pub busy_ns: f64,
    /// Completion time of the last event on the NPU clock.
    pub makespan_ns: f64,
    /// Largest total queue depth observed across deliveries.
    pub max_queue_depth: usize,
    /// Mean total queue depth over deliveries.
    pub mean_queue_depth: f64,
    /// Hand-overs delayed because the session's queue was full.
    pub decoder_stalls: usize,
    /// Arrival → delivery latency over every delivered frame.
    pub latency: LatencyStats,
    /// Per-session breakdown, admitted order.
    pub per_session: Vec<SessionChaosStats>,
}

impl ChaosOutcome {
    /// Frames that reached the client at any fidelity.
    pub fn frames_delivered(&self) -> usize {
        self.frames_full + self.frames_degraded
    }

    /// Delivered fraction of the offered load (1.0 when nothing offered).
    pub fn delivered_fraction(&self) -> f64 {
        if self.frames_offered > 0 {
            self.frames_delivered() as f64 / self.frames_offered as f64
        } else {
            1.0
        }
    }

    /// Fraction of the makespan the NPU spent on completed work.
    pub fn utilization(&self) -> f64 {
        if self.makespan_ns > 0.0 {
            self.busy_ns / self.makespan_ns
        } else {
            0.0
        }
    }
}

/// One hand-over waiting on (or retrying at) the NPU.
#[derive(Debug, Clone, Copy)]
struct QueueEntry {
    /// Index into the session's item list.
    item: usize,
    /// Hand-over (or retry-eligible) instant.
    entry_ns: f64,
    /// Service attempts already failed.
    attempt: u32,
}

/// One session's bounded queue state inside the event loop.
struct SessionQueue<'a> {
    items: &'a [crate::session::WorkItem],
    /// Next item not yet handed over.
    next: usize,
    /// Front is the only servable entry; sessions are strictly in decode
    /// order.
    queue: VecDeque<QueueEntry>,
}

impl SessionQueue<'_> {
    /// Fills free slots up to `cap`. `now` is the instant slots freed; a
    /// hand-over pushed past its decoder-lane `ready_ns` is a stall.
    fn refill(&mut self, now: f64, cap: usize, stalls: &mut usize) {
        while self.queue.len() < cap && self.next < self.items.len() {
            let ready = self.items[self.next].ready_ns;
            let entry = ready.max(now);
            if entry > ready {
                *stalls += 1;
            }
            self.queue.push_back(QueueEntry {
                item: self.next,
                entry_ns: entry,
                attempt: 0,
            });
            self.next += 1;
        }
    }
}

/// Mutable chaos state of one session.
struct SessLive {
    /// Current ladder rung.
    level: DegradeLevel,
    /// Upgrade floor: [`DegradeLevel::Int8`] for int8-mode sessions.
    base: DegradeLevel,
    /// Consecutive short-wait serves toward an upgrade.
    streak: usize,
    /// Killed by a crash.
    dead: bool,
    /// Checkpoint restores paid.
    restores: usize,
    /// Delivered at own fidelity.
    full: usize,
    /// Delivered degraded.
    degraded: usize,
    /// Dropped by the deadline.
    shed: usize,
    /// Ladder/retry counters.
    stats: DegradationStats,
}

/// Voids every device-resident hand-over at the crash instant. With
/// checkpoint restore the owning sessions re-enter after the outage plus
/// the restore penalty; without it they die.
fn apply_crash(
    w: &CrashWindow,
    queues: &mut [SessionQueue<'_>],
    live: &mut [SessLive],
    rec: &RecoveryConfig,
    session_restores: &mut usize,
    sessions_lost: &mut usize,
) {
    for (s, q) in queues.iter_mut().enumerate() {
        if live[s].dead {
            continue;
        }
        let resident = q.queue.iter().any(|e| e.entry_ns <= w.at_ns);
        if !resident {
            continue;
        }
        if rec.checkpoint_restore {
            let resume = w.end_ns() + rec.restore_penalty_ns;
            for e in q.queue.iter_mut() {
                if e.entry_ns <= w.at_ns {
                    e.entry_ns = resume;
                }
            }
            live[s].restores += 1;
            *session_restores += 1;
        } else {
            live[s].dead = true;
            q.queue.clear();
            q.next = q.items.len();
            *sessions_lost += 1;
        }
    }
}

/// Replays the merged work of `sessions` through the shared NPU under
/// `policy`. Deterministic: ties between sessions break by admitted index.
pub fn schedule(
    sessions: &[DrivenSession],
    policy: SchedPolicy,
    cfg: &SchedConfig,
    sim: &SimConfig,
) -> Result<ScheduleOutcome> {
    Ok(schedule_sampled(sessions, policy, cfg, sim)?.0)
}

/// [`schedule`] that also returns the raw per-frame latency samples, in
/// delivery order. The fleet layer merges the samples of every shard to
/// compute genuine fleet-wide percentiles — percentiles of percentiles
/// would be wrong whenever shards carry different loads.
pub fn schedule_sampled(
    sessions: &[DrivenSession],
    policy: SchedPolicy,
    cfg: &SchedConfig,
    sim: &SimConfig,
) -> Result<(ScheduleOutcome, Vec<f64>)> {
    let (out, samples) = run_loop(sessions, policy, cfg, sim, None)?;
    let per_session = out
        .per_session
        .iter()
        .map(|s| SessionSchedStats {
            session: s.session,
            frames_served: s.frames_full + s.frames_degraded,
            frames_shed: s.frames_shed,
            latency: s.latency,
        })
        .collect();
    Ok((
        ScheduleOutcome {
            policy: out.policy,
            frames_served: out.frames_delivered(),
            frames_shed: out.frames_shed,
            switches: out.switches,
            switch_ns: out.switch_ns,
            busy_ns: out.busy_ns,
            makespan_ns: out.makespan_ns,
            max_queue_depth: out.max_queue_depth,
            mean_queue_depth: out.mean_queue_depth,
            decoder_stalls: out.decoder_stalls,
            latency: out.latency,
            per_session,
        },
        samples,
    ))
}

/// Replays the merged sessions against a deterministic fault plan. The
/// quiet-profile replay is byte-identical to [`schedule`].
pub fn schedule_chaos(
    sessions: &[DrivenSession],
    policy: SchedPolicy,
    cfg: &SchedConfig,
    sim: &SimConfig,
    chaos: &ChaosConfig,
) -> Result<ChaosOutcome> {
    Ok(run_loop(sessions, policy, cfg, sim, Some(chaos))?.0)
}

/// The unified event loop behind [`schedule`] and [`schedule_chaos`].
/// Also returns the raw delivered-frame latency samples, delivery order.
fn run_loop(
    sessions: &[DrivenSession],
    policy: SchedPolicy,
    cfg: &SchedConfig,
    sim: &SimConfig,
    chaos: Option<&ChaosConfig>,
) -> Result<(ChaosOutcome, Vec<f64>)> {
    let cap = cfg.queue_capacity.max(1);
    let mut queues: Vec<SessionQueue> = sessions
        .iter()
        .map(|s| SessionQueue {
            items: &s.items,
            next: 0,
            queue: VecDeque::new(),
        })
        .collect();
    let mut decoder_stalls = 0usize;
    for q in &mut queues {
        q.refill(0.0, cap, &mut decoder_stalls);
    }

    let quiet = NpuFaultProfile::none();
    let profile = chaos.map(|c| &c.faults).unwrap_or(&quiet);
    let default_rec = RecoveryConfig::default();
    let rec = chaos.map(|c| &c.recovery).unwrap_or(&default_rec);
    let max_attempts = rec.max_attempts.max(1);
    // The ladder needs the deadline to scale its thresholds; without one
    // it stays dormant and pressure handling is shed-only.
    let ladder = chaos
        .and_then(|c| c.recovery.ladder)
        .filter(|_| cfg.shed_after_ns.is_some());
    let mut crash_windows: Vec<CrashWindow> =
        chaos.map(|c| c.faults.crashes.clone()).unwrap_or_default();
    crash_windows.sort_by(|a, b| a.at_ns.total_cmp(&b.at_ns));
    let mut crash_idx = 0usize;

    let mut live: Vec<SessLive> = sessions
        .iter()
        .map(|s| {
            let base = if s.compute == ComputeMode::Int8 {
                DegradeLevel::Int8
            } else {
                DegradeLevel::Full
            };
            SessLive {
                level: base,
                base,
                streak: 0,
                dead: false,
                restores: 0,
                full: 0,
                degraded: 0,
                shed: 0,
                stats: DegradationStats::default(),
            }
        })
        .collect();

    let ops_per_ns = sim.npu_ops_per_ns();
    let int8_ops_per_ns = sim.npu_int8_ops_per_ns();
    // Work handed over before the device is online waits for it.
    let mut t_npu = cfg.npu_available_ns.max(0.0);
    let mut resident_large: Option<bool> = None;
    let mut run_len = 0usize;
    let mut switches = 0usize;
    let mut switch_ns = 0.0f64;
    let mut busy_ns = 0.0f64;
    let mut stalls = 0usize;
    let mut stall_ns_total = 0.0f64;
    let mut wasted_ns = 0.0f64;
    let mut crashes = 0usize;
    let mut retries_total = 0usize;
    let mut session_restores = 0usize;
    let mut sessions_lost = 0usize;
    let mut latencies: Vec<f64> = Vec::new();
    let mut lat_per: Vec<Vec<f64>> = vec![Vec::new(); sessions.len()];
    let mut max_depth = 0usize;
    let mut depth_sum = 0usize;
    let mut depth_events = 0usize;

    let total_items: usize = sessions.iter().map(|s| s.items.len()).sum();
    // Every iteration resolves an item, burns one bounded retry, or
    // consumes a crash window — so this bound is unreachable unless an
    // invariant broke, and tripping it surfaces the bug instead of
    // spinning forever.
    let max_iters = total_items
        .saturating_mul(max_attempts as usize + 2)
        .saturating_add(crash_windows.len() * (sessions.len() + 2))
        .saturating_add(64);
    let mut iters = 0usize;

    // Each pass delivers, sheds, retries or crash-recovers one event; done
    // when all queues are empty. The loop condition finds the earliest
    // hand-over among the queue fronts.
    while let Some(min_entry) = queues
        .iter()
        .filter_map(|q| q.queue.front().map(|e| e.entry_ns))
        .min_by(|a, b| a.total_cmp(b))
    {
        let t_now = t_npu.max(min_entry);
        iters += 1;
        if iters > max_iters {
            return Err(ServeError::Scheduler {
                time_ns: t_now,
                detail: format!("event loop exceeded {max_iters} iterations"),
            });
        }

        // A crash window we have reached voids the device state before any
        // more work is picked.
        if crash_idx < crash_windows.len() && crash_windows[crash_idx].at_ns <= t_now {
            let w = crash_windows[crash_idx];
            crash_idx += 1;
            crashes += 1;
            resident_large = None;
            run_len = 0;
            apply_crash(
                &w,
                &mut queues,
                &mut live,
                rec,
                &mut session_restores,
                &mut sessions_lost,
            );
            t_npu = t_npu.max(w.end_ns());
            continue;
        }

        // Items already handed over at t_now; non-empty by construction.
        let oldest = |pred: &dyn Fn(bool) -> bool| -> Option<(usize, usize, f64, u32)> {
            queues
                .iter()
                .enumerate()
                .filter_map(|(s, q)| {
                    let &QueueEntry {
                        item: i,
                        entry_ns: entry,
                        attempt,
                    } = q.queue.front()?;
                    (entry <= t_now && pred(q.items[i].uses_large_model))
                        .then_some((s, i, entry, attempt))
                })
                .min_by(|a, b| a.2.total_cmp(&b.2).then(a.0.cmp(&b.0)))
        };
        let any = |_: bool| true;
        let picked = match policy {
            SchedPolicy::Fifo => oldest(&any),
            SchedPolicy::Batch => {
                let same = |m: bool| Some(m) == resident_large;
                let other = |m: bool| Some(m) != resident_large;
                if run_len >= cfg.batch_cap {
                    // Starvation bound hit: the oldest deferred
                    // opposite-model item goes next (if any waits).
                    oldest(&other).or_else(|| oldest(&any))
                } else {
                    oldest(&same).or_else(|| oldest(&any))
                }
            }
        };
        let Some((s, i, _entry, attempt)) = picked else {
            return Err(ServeError::Scheduler {
                time_ns: t_now,
                detail: "no queue front is handed over at the service instant".into(),
            });
        };

        let item = &queues[s].items[i];
        // Past its shedding deadline: the watchdog fires. With a ladder
        // the frame is delivered as a copy-forward; shed-only drops it.
        if let Some(d) = cfg.shed_after_ns {
            if item.arrival_ns + d < t_now {
                if ladder.is_some() {
                    let latency = t_now - item.arrival_ns;
                    latencies.push(latency);
                    lat_per[s].push(latency);
                    live[s].degraded += 1;
                    live[s].stats.watchdog_degraded += 1;
                    live[s].stats.frames_at_level[DegradeLevel::CopyForward.index()] += 1;
                    queues[s].queue.pop_front();
                    queues[s].refill(t_now, cap, &mut decoder_stalls);
                    let depth: usize = queues.iter().map(|q| q.queue.len()).sum();
                    max_depth = max_depth.max(depth);
                    depth_sum += depth;
                    depth_events += 1;
                } else {
                    queues[s].queue.pop_front();
                    queues[s].refill(t_now, cap, &mut decoder_stalls);
                    live[s].shed += 1;
                }
                continue;
            }
        }

        // Ladder transitions, driven by how close this frame ran to its
        // deadline.
        if let (Some(lad), Some(d)) = (ladder, cfg.shed_after_ns) {
            let age = t_now - item.arrival_ns;
            if age > lad.downgrade_wait_frac * d {
                if live[s].level < DegradeLevel::CopyForward {
                    live[s].level = live[s].level.down();
                    live[s].stats.downgrades += 1;
                }
                live[s].streak = 0;
            } else if age <= lad.upgrade_wait_frac * d {
                live[s].streak += 1;
                if live[s].streak >= lad.upgrade_streak && live[s].level > live[s].base {
                    live[s].level = live[s].level.up();
                    live[s].stats.upgrades += 1;
                    live[s].streak = 0;
                }
            } else {
                live[s].streak = 0;
            }
        }

        // NN-L anchors always run full; NN-S frames run at the session's
        // current rung.
        let eff = if item.uses_large_model {
            DegradeLevel::Full
        } else {
            live[s].level
        };

        // Agent-unit-only rungs: no NPU occupancy, no switch, no fault
        // exposure — the mask is reconstructed (or copied forward) on the
        // agent unit and delivered at the decision instant.
        if !item.uses_large_model && eff >= DegradeLevel::SkipRefine {
            let latency = t_now - item.arrival_ns;
            latencies.push(latency);
            lat_per[s].push(latency);
            live[s].degraded += 1;
            live[s].stats.frames_at_level[eff.index()] += 1;
            queues[s].queue.pop_front();
            queues[s].refill(t_now, cap, &mut decoder_stalls);
            let depth: usize = queues.iter().map(|q| q.queue.len()).sum();
            max_depth = max_depth.max(depth);
            depth_sum += depth;
            depth_events += 1;
            continue;
        }

        let needs_switch = resident_large != Some(item.uses_large_model);
        let switch_cost = if !needs_switch {
            0.0
        } else if item.uses_large_model {
            sim.switch_to_large_ns()
        } else {
            sim.switch_to_small_ns()
        };
        let stalled = profile.draw_stall(item.session, item.idx, attempt);
        let stall_extra = if stalled { profile.stall_ns } else { 0.0 };
        let rate = if eff >= DegradeLevel::Int8 && !item.uses_large_model {
            int8_ops_per_ns
        } else {
            ops_per_ns
        };
        let service = item.ops as f64 / rate;
        let start = t_now + switch_cost + stall_extra;
        let finish = start + service;

        // The device dies mid-attempt: the attempt (switch included) is
        // void, and the crash voids every resident hand-over too.
        if crash_idx < crash_windows.len() && crash_windows[crash_idx].at_ns < finish {
            let w = crash_windows[crash_idx];
            crash_idx += 1;
            crashes += 1;
            wasted_ns += w.at_ns - t_now;
            resident_large = None;
            run_len = 0;
            apply_crash(
                &w,
                &mut queues,
                &mut live,
                rec,
                &mut session_restores,
                &mut sessions_lost,
            );
            t_npu = w.end_ns();
            continue;
        }

        if needs_switch {
            switch_ns += switch_cost;
            switches += 1;
            resident_large = Some(item.uses_large_model);
            run_len = 0;
        }
        if stalled {
            stalls += 1;
            stall_ns_total += stall_extra;
        }
        run_len += 1;

        // The attempt completed on the NPU clock — did it return garbage?
        if profile.draw_work_item_failure(item.session, item.idx, attempt) {
            wasted_ns += service;
            let failed_attempts = attempt + 1;
            if failed_attempts >= max_attempts {
                live[s].stats.retry_exhausted += 1;
                if ladder.is_some() {
                    // Budget gone: deliver the copy-forward fallback.
                    let latency = finish - item.arrival_ns;
                    latencies.push(latency);
                    lat_per[s].push(latency);
                    live[s].degraded += 1;
                    live[s].stats.frames_at_level[DegradeLevel::CopyForward.index()] += 1;
                } else {
                    live[s].shed += 1;
                }
                queues[s].queue.pop_front();
                queues[s].refill(finish, cap, &mut decoder_stalls);
            } else {
                retries_total += 1;
                live[s].stats.retries += 1;
                let Some(front) = queues[s].queue.front_mut() else {
                    return Err(ServeError::Scheduler {
                        time_ns: finish,
                        detail: format!("session {s}: retried entry vanished from its queue front"),
                    });
                };
                front.attempt = failed_attempts;
                front.entry_ns = finish + rec.backoff_ns(failed_attempts);
            }
            t_npu = finish;
            continue;
        }

        busy_ns += service;
        let latency = finish - item.arrival_ns;
        latencies.push(latency);
        lat_per[s].push(latency);
        if eff > live[s].base {
            live[s].degraded += 1;
        } else {
            live[s].full += 1;
        }
        live[s].stats.frames_at_level[eff.index()] += 1;
        queues[s].queue.pop_front();
        queues[s].refill(finish, cap, &mut decoder_stalls);
        t_npu = finish;

        let depth: usize = queues.iter().map(|q| q.queue.len()).sum();
        max_depth = max_depth.max(depth);
        depth_sum += depth;
        depth_events += 1;
    }

    let mut frames_at_level = [0usize; DegradeLevel::COUNT];
    let mut per_session = Vec::with_capacity(sessions.len());
    for (s, sess) in sessions.iter().enumerate() {
        let l = &live[s];
        let resolved = l.full + l.degraded + l.shed;
        let lost = sess.items.len() - resolved;
        if lost > 0 && !l.dead {
            return Err(ServeError::Scheduler {
                time_ns: t_npu,
                detail: format!("session {s}: {lost} frames unaccounted without a crash kill"),
            });
        }
        for (k, n) in l.stats.frames_at_level.iter().enumerate() {
            frames_at_level[k] += n;
        }
        per_session.push(SessionChaosStats {
            session: sess.session,
            frames_full: l.full,
            frames_degraded: l.degraded,
            frames_shed: l.shed,
            frames_lost: lost,
            lost: l.dead,
            restores: l.restores,
            degradation: l.stats,
            latency: LatencyStats::from_samples(&lat_per[s]),
        });
    }

    let outcome = ChaosOutcome {
        policy,
        frames_offered: total_items,
        frames_full: per_session.iter().map(|p| p.frames_full).sum(),
        frames_degraded: per_session.iter().map(|p| p.frames_degraded).sum(),
        frames_shed: per_session.iter().map(|p| p.frames_shed).sum(),
        frames_lost: per_session.iter().map(|p| p.frames_lost).sum(),
        frames_at_level,
        sessions_lost,
        session_restores,
        retries: retries_total,
        retry_exhausted: per_session
            .iter()
            .map(|p| p.degradation.retry_exhausted)
            .sum(),
        watchdog_degraded: per_session
            .iter()
            .map(|p| p.degradation.watchdog_degraded)
            .sum(),
        stalls,
        stall_ns: stall_ns_total,
        crashes,
        wasted_ns,
        switches,
        switch_ns,
        busy_ns,
        makespan_ns: t_npu,
        max_queue_depth: max_depth,
        mean_queue_depth: if depth_events > 0 {
            depth_sum as f64 / depth_events as f64
        } else {
            0.0
        },
        decoder_stalls,
        latency: LatencyStats::from_samples(&latencies),
        per_session,
    };
    Ok((outcome, latencies))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{DrivenSession, WorkItem};
    use vrd_codec::FrameType;

    /// A synthetic session alternating one NN-L anchor with `b_per_anchor`
    /// NN-S frames, paced at `interval` ns starting at `offset` ns.
    fn synth_session_at(
        session: usize,
        groups: usize,
        b_per_anchor: usize,
        interval: f64,
        offset: f64,
    ) -> DrivenSession {
        let mut items = Vec::new();
        let mut k = 0usize;
        for _ in 0..groups {
            for j in 0..=b_per_anchor {
                let arrival = offset + k as f64 * interval;
                items.push(WorkItem {
                    session,
                    idx: k,
                    display: k as u32,
                    ftype: if j == 0 { FrameType::I } else { FrameType::B },
                    ops: if j == 0 { 4_000_000_000 } else { 1_000_000 },
                    uses_large_model: j == 0,
                    arrival_ns: arrival,
                    ready_ns: arrival + 1_000.0,
                });
                k += 1;
            }
        }
        DrivenSession {
            name: format!("synth-{session}"),
            session,
            compute: ComputeMode::F32Reference,
            frames: items.len(),
            peak_live_frames: 2,
            total_ops: items.iter().map(|i| i.ops).sum(),
            switches_in_order: 2 * groups,
            isolated_ns: 0.0,
            items,
        }
    }

    /// [`synth_session_at`] with sessions staggered at arbitrary (anchor
    /// phase-spreading) offsets, like real independently-started streams.
    fn synth_session(
        session: usize,
        groups: usize,
        b_per_anchor: usize,
        interval: f64,
    ) -> DrivenSession {
        synth_session_at(
            session,
            groups,
            b_per_anchor,
            interval,
            session as f64 * 1.3 * interval,
        )
    }

    fn sim() -> SimConfig {
        SimConfig::default()
    }

    fn quiet_chaos() -> ChaosConfig {
        ChaosConfig {
            faults: NpuFaultProfile::none(),
            recovery: RecoveryConfig::default(),
        }
    }

    /// Every admitted frame accounted for exactly once.
    fn assert_conserved(out: &ChaosOutcome) {
        assert_eq!(
            out.frames_full + out.frames_degraded + out.frames_shed + out.frames_lost,
            out.frames_offered,
            "conservation broke: {out:?}"
        );
    }

    #[test]
    fn single_session_policies_agree() {
        let sessions = vec![synth_session(0, 4, 3, 2e6)];
        let cfg = SchedConfig::default();
        let fifo = schedule(&sessions, SchedPolicy::Fifo, &cfg, &sim()).unwrap();
        let batch = schedule(&sessions, SchedPolicy::Batch, &cfg, &sim()).unwrap();
        // One stream leaves nothing to batch across: identical schedules.
        assert_eq!(fifo.frames_served, batch.frames_served);
        assert_eq!(fifo.switches, batch.switches);
        assert_eq!(fifo.latency, batch.latency);
    }

    #[test]
    fn batching_saves_switches_across_sessions() {
        // An interval tight enough that FIFO's per-anchor switch pairs
        // overload the NPU while compute alone fits — the regime where a
        // backlog forms and cross-session batching has choices to make.
        let sessions: Vec<DrivenSession> = (0..4).map(|s| synth_session(s, 4, 3, 1e6)).collect();
        let cfg = SchedConfig::default();
        let fifo = schedule(&sessions, SchedPolicy::Fifo, &cfg, &sim()).unwrap();
        let batch = schedule(&sessions, SchedPolicy::Batch, &cfg, &sim()).unwrap();
        assert_eq!(fifo.frames_served, 4 * 16);
        assert_eq!(batch.frames_served, 4 * 16);
        assert!(
            batch.switches < fifo.switches,
            "batching should amortise switches: {} vs {}",
            batch.switches,
            fifo.switches
        );
        assert!(batch.switch_ns < fifo.switch_ns);
        assert!(
            batch.latency.p99_ns < fifo.latency.p99_ns,
            "batching should cut p99 under contention: {} vs {}",
            batch.latency.p99_ns,
            fifo.latency.p99_ns
        );
        assert!(batch.makespan_ns < fifo.makespan_ns);
    }

    #[test]
    fn schedules_are_deterministic() {
        let sessions: Vec<DrivenSession> = (0..3).map(|s| synth_session(s, 3, 2, 1.5e6)).collect();
        let cfg = SchedConfig::default();
        let a = schedule(&sessions, SchedPolicy::Batch, &cfg, &sim()).unwrap();
        let b = schedule(&sessions, SchedPolicy::Batch, &cfg, &sim()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn npu_availability_offset_delays_service_and_is_sampled() {
        let sessions = vec![synth_session(0, 3, 3, 2e6)];
        let on_time = SchedConfig::default();
        let late = SchedConfig {
            npu_available_ns: 5e7,
            ..SchedConfig::default()
        };
        let (a, a_samples) =
            schedule_sampled(&sessions, SchedPolicy::Fifo, &on_time, &sim()).unwrap();
        let (b, b_samples) = schedule_sampled(&sessions, SchedPolicy::Fifo, &late, &sim()).unwrap();
        assert_eq!(a.frames_served, b.frames_served);
        // Spin-up delays every completion: first frame can't finish before
        // the device exists, so the whole distribution shifts right.
        assert!(b.latency.p50_ns > a.latency.p50_ns);
        assert!(b.makespan_ns >= 5e7);
        assert_eq!(b.busy_ns, a.busy_ns, "spin-up is idle time, not compute");
        // The raw samples back the summary exactly.
        assert_eq!(a_samples.len(), a.frames_served);
        assert_eq!(LatencyStats::from_samples(&a_samples), a.latency);
        assert_eq!(LatencyStats::from_samples(&b_samples), b.latency);
        // A zero offset is byte-identical to the default config.
        let (c, _) = schedule_sampled(&sessions, SchedPolicy::Fifo, &on_time, &sim()).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn bounded_queue_backpressures_the_decoder() {
        // A tiny queue forces hand-overs to wait on serve completions.
        let sessions = vec![synth_session(0, 6, 5, 1_000.0)];
        let cfg = SchedConfig {
            queue_capacity: 1,
            ..SchedConfig::default()
        };
        let out = schedule(&sessions, SchedPolicy::Fifo, &cfg, &sim()).unwrap();
        assert_eq!(out.frames_served, 36);
        assert!(out.decoder_stalls > 0, "expected backpressure stalls");
        assert!(out.max_queue_depth <= 1);
    }

    #[test]
    fn batch_cap_bounds_large_model_starvation() {
        // One session is pure NN-S work; another's anchors must still get
        // served within the cap.
        let mut nns_only = synth_session(0, 1, 60, 10_000.0);
        for item in &mut nns_only.items {
            item.uses_large_model = false;
            item.ops = 1_000_000;
        }
        let anchors = synth_session(1, 3, 0, 50_000.0);
        let cfg = SchedConfig {
            batch_cap: 4,
            ..SchedConfig::default()
        };
        let out = schedule(&[nns_only, anchors], SchedPolicy::Batch, &cfg, &sim()).unwrap();
        assert_eq!(out.frames_served, 61 + 3);
        // Every anchor was eventually served despite the NN-S flood.
        assert_eq!(out.per_session[1].frames_served, 3);
    }

    #[test]
    fn shedding_deadline_drops_late_frames() {
        let sessions: Vec<DrivenSession> = (0..4).map(|s| synth_session(s, 4, 3, 100.0)).collect();
        let cfg = SchedConfig {
            shed_after_ns: Some(2e6),
            ..SchedConfig::default()
        };
        let out = schedule(&sessions, SchedPolicy::Fifo, &cfg, &sim()).unwrap();
        assert!(out.frames_shed > 0, "overload should shed");
        assert_eq!(out.frames_served + out.frames_shed, 4 * 16);
        // A served frame waited at most the deadline before starting, so
        // its latency is bounded by deadline + one switch + its service.
        let bound = 2e6 + sim().switch_to_large_ns() + 4e9 / sim().npu_ops_per_ns() + 1.0;
        assert!(
            out.latency.max_ns < bound,
            "{} >= {bound}",
            out.latency.max_ns
        );
    }

    #[test]
    fn fault_free_chaos_is_identical_to_plain_schedule() {
        // The quiet-profile chaos replay and the plain replay must agree
        // bit-for-bit, with and without a deadline, under both policies.
        // With a deadline the ladder intentionally replaces sheds with
        // copy-forwards, so identity is pinned against shed-only recovery;
        // without one the ladder is dormant and the default recovery must
        // also be identical.
        let sessions: Vec<DrivenSession> = (0..4).map(|s| synth_session(s, 4, 3, 1e6)).collect();
        for (shed, recovery) in [
            (None, RecoveryConfig::default()),
            (None, RecoveryConfig::shed_only()),
            (Some(2e6), RecoveryConfig::shed_only()),
        ] {
            let cfg = SchedConfig {
                shed_after_ns: shed,
                ..SchedConfig::default()
            };
            for policy in [SchedPolicy::Fifo, SchedPolicy::Batch] {
                let plain = schedule(&sessions, policy, &cfg, &sim()).unwrap();
                let quiet = ChaosConfig {
                    faults: NpuFaultProfile::none(),
                    recovery: recovery.clone(),
                };
                let chaos = schedule_chaos(&sessions, policy, &cfg, &sim(), &quiet).unwrap();
                assert_eq!(chaos.frames_delivered(), plain.frames_served);
                assert_eq!(chaos.frames_shed, plain.frames_shed);
                assert_eq!(chaos.frames_degraded, 0, "quiet replay degraded frames");
                assert_eq!(chaos.switches, plain.switches);
                assert_eq!(chaos.switch_ns, plain.switch_ns);
                assert_eq!(chaos.busy_ns, plain.busy_ns);
                assert_eq!(chaos.makespan_ns, plain.makespan_ns);
                assert_eq!(chaos.latency, plain.latency);
                assert_eq!(chaos.decoder_stalls, plain.decoder_stalls);
                assert_conserved(&chaos);
            }
        }
    }

    #[test]
    fn work_item_failures_are_retried_to_completion() {
        let sessions: Vec<DrivenSession> = (0..2).map(|s| synth_session(s, 3, 3, 2e6)).collect();
        let cfg = SchedConfig::default();
        let chaos = ChaosConfig {
            faults: NpuFaultProfile::work_item_failures(0.2, 11),
            recovery: RecoveryConfig {
                max_attempts: 8,
                ..RecoveryConfig::default()
            },
        };
        let out = schedule_chaos(&sessions, SchedPolicy::Fifo, &cfg, &sim(), &chaos).unwrap();
        assert_conserved(&out);
        assert!(out.retries > 0, "rate 0.2 planted no failures");
        assert!(out.wasted_ns > 0.0);
        // No deadline, generous budget: everything is eventually served
        // at full fidelity.
        assert_eq!(out.frames_full, out.frames_offered);
        assert_eq!(out.frames_degraded + out.frames_shed + out.frames_lost, 0);
        // Failed attempts burn real time: retried frames finish later, so
        // mean latency strictly rises (idle gaps can absorb the makespan).
        let clean = schedule(&sessions, SchedPolicy::Fifo, &cfg, &sim()).unwrap();
        assert!(out.makespan_ns >= clean.makespan_ns);
        assert!(out.latency.mean_ns > clean.latency.mean_ns);
    }

    #[test]
    fn exhausted_retry_budget_degrades_with_ladder_and_sheds_without() {
        // Every attempt fails, so every item exhausts its budget.
        let sessions = vec![synth_session(0, 2, 3, 2e6)];
        let cfg = SchedConfig {
            shed_after_ns: Some(1e9),
            ..SchedConfig::default()
        };
        let faults = NpuFaultProfile {
            work_item_fail_rate: 1.0,
            ..NpuFaultProfile::none()
        };
        let with_ladder = schedule_chaos(
            &sessions,
            SchedPolicy::Fifo,
            &cfg,
            &sim(),
            &ChaosConfig {
                faults: faults.clone(),
                recovery: RecoveryConfig::default(),
            },
        )
        .unwrap();
        assert_conserved(&with_ladder);
        assert_eq!(with_ladder.frames_degraded, with_ladder.frames_offered);
        assert_eq!(with_ladder.retry_exhausted, with_ladder.frames_offered);
        assert!(with_ladder.retries > 0);

        let shed_only = schedule_chaos(
            &sessions,
            SchedPolicy::Fifo,
            &cfg,
            &sim(),
            &ChaosConfig {
                faults,
                recovery: RecoveryConfig::shed_only(),
            },
        )
        .unwrap();
        assert_conserved(&shed_only);
        assert_eq!(shed_only.frames_shed, shed_only.frames_offered);
        assert_eq!(shed_only.frames_degraded, 0);
        assert_eq!(shed_only.retries, 0, "shed_only has a single attempt");
    }

    #[test]
    fn stalls_stretch_the_schedule() {
        let sessions = vec![synth_session(0, 4, 3, 2e6)];
        let cfg = SchedConfig::default();
        let chaos = ChaosConfig {
            faults: NpuFaultProfile::stalls(0.5, 300_000.0, 5),
            recovery: RecoveryConfig::default(),
        };
        let out = schedule_chaos(&sessions, SchedPolicy::Fifo, &cfg, &sim(), &chaos).unwrap();
        let clean = schedule(&sessions, SchedPolicy::Fifo, &cfg, &sim()).unwrap();
        assert_conserved(&out);
        assert!(out.stalls > 0);
        assert!(out.stall_ns > 0.0);
        assert_eq!(out.frames_full, out.frames_offered);
        assert!(out.latency.mean_ns > clean.latency.mean_ns);
    }

    #[test]
    fn crash_without_checkpoints_kills_resident_sessions() {
        let sessions: Vec<DrivenSession> = (0..3).map(|s| synth_session(s, 4, 3, 1e6)).collect();
        let cfg = SchedConfig::default();
        // Crash well inside the replay (its makespan is tens of ms).
        let chaos = ChaosConfig {
            faults: NpuFaultProfile::single_crash(5e6, 2e6),
            recovery: RecoveryConfig {
                checkpoint_restore: false,
                ..RecoveryConfig::shed_only()
            },
        };
        let out = schedule_chaos(&sessions, SchedPolicy::Fifo, &cfg, &sim(), &chaos).unwrap();
        assert_conserved(&out);
        assert_eq!(out.crashes, 1);
        assert!(out.sessions_lost > 0, "crash killed nobody");
        assert!(out.frames_lost > 0);
        assert_eq!(out.session_restores, 0);
        let lost: Vec<_> = out.per_session.iter().filter(|p| p.lost).collect();
        assert_eq!(lost.len(), out.sessions_lost);
        for p in lost {
            assert!(p.frames_lost > 0);
        }
    }

    #[test]
    fn crash_with_checkpoints_loses_nothing() {
        let sessions: Vec<DrivenSession> = (0..3).map(|s| synth_session(s, 4, 3, 1e6)).collect();
        let cfg = SchedConfig::default();
        let chaos = ChaosConfig {
            faults: NpuFaultProfile::single_crash(5e6, 2e6),
            recovery: RecoveryConfig::default(),
        };
        let out = schedule_chaos(&sessions, SchedPolicy::Fifo, &cfg, &sim(), &chaos).unwrap();
        assert_conserved(&out);
        assert_eq!(out.crashes, 1);
        assert_eq!(out.sessions_lost, 0);
        assert_eq!(out.frames_lost, 0);
        assert!(out.session_restores > 0, "nobody paid a restore");
        assert_eq!(out.frames_delivered(), out.frames_offered);
        // The outage plus restore penalty shows up on the clock.
        let clean = schedule(&sessions, SchedPolicy::Fifo, &cfg, &sim()).unwrap();
        assert!(out.makespan_ns > clean.makespan_ns);
        assert!(out.makespan_ns >= 7e6, "makespan predates the recovery");
    }

    #[test]
    fn ladder_degrades_under_pressure_and_recovers() {
        // A hopeless burst followed by a calm tail: the ladder must step
        // down during the burst and climb back up in the tail.
        let mut burst = synth_session(0, 6, 7, 50.0);
        let calm = synth_session_at(0, 6, 7, 4e6, 1e9);
        let offset = burst.items.len();
        for (k, item) in calm.items.iter().enumerate() {
            let mut item = item.clone();
            item.idx = offset + k;
            item.display = (offset + k) as u32;
            burst.items.push(item);
        }
        burst.frames = burst.items.len();
        burst.total_ops = burst.items.iter().map(|i| i.ops).sum();
        let cfg = SchedConfig {
            shed_after_ns: Some(3e6),
            ..SchedConfig::default()
        };
        let chaos = quiet_chaos();
        let out = schedule_chaos(&[burst], SchedPolicy::Fifo, &cfg, &sim(), &chaos).unwrap();
        assert_conserved(&out);
        let deg = &out.per_session[0].degradation;
        assert!(deg.downgrades > 0, "burst never downgraded: {deg:?}");
        assert!(deg.upgrades > 0, "calm tail never upgraded: {deg:?}");
        assert_eq!(out.frames_shed, 0, "ladder mode must not shed");
        assert_eq!(out.frames_lost, 0);
        assert_eq!(out.frames_delivered(), out.frames_offered);
        assert!(out.frames_degraded > 0);
        // The calm tail is served at full fidelity again.
        assert!(out.frames_full > 0);
    }

    #[test]
    fn int8_sessions_floor_at_their_own_rung() {
        // An int8-mode session's NN-S serves are full fidelity *for it*
        // and run faster than the f32 replay of the same items.
        let mut s = synth_session(0, 3, 5, 4e6);
        s.compute = ComputeMode::Int8;
        let f32_twin = synth_session(0, 3, 5, 4e6);
        let cfg = SchedConfig::default();
        let int8 = schedule_chaos(&[s], SchedPolicy::Fifo, &cfg, &sim(), &quiet_chaos()).unwrap();
        let f32r =
            schedule_chaos(&[f32_twin], SchedPolicy::Fifo, &cfg, &sim(), &quiet_chaos()).unwrap();
        assert_conserved(&int8);
        assert_eq!(int8.frames_full, int8.frames_offered);
        assert_eq!(int8.frames_degraded, 0);
        assert_eq!(int8.frames_at_level[DegradeLevel::Int8.index()], 3 * 5);
        assert!(int8.busy_ns < f32r.busy_ns, "int8 NN-S should be cheaper");
    }

    #[test]
    fn chaos_replays_are_deterministic_and_policy_order_free() {
        let sessions: Vec<DrivenSession> = (0..3).map(|s| synth_session(s, 4, 3, 1e6)).collect();
        let cfg = SchedConfig {
            shed_after_ns: Some(8e6),
            ..SchedConfig::default()
        };
        let chaos = ChaosConfig {
            faults: NpuFaultProfile::chaos(0.15, 77),
            recovery: RecoveryConfig::default(),
        };
        let a = schedule_chaos(&sessions, SchedPolicy::Batch, &cfg, &sim(), &chaos).unwrap();
        let b = schedule_chaos(&sessions, SchedPolicy::Batch, &cfg, &sim(), &chaos).unwrap();
        assert_eq!(a, b);
        assert_conserved(&a);
        // Counter-hashed draws: the fifo replay of the same profile sees
        // the same fault count on first attempts even though its visit
        // order differs.
        let fifo = schedule_chaos(&sessions, SchedPolicy::Fifo, &cfg, &sim(), &chaos).unwrap();
        assert_conserved(&fifo);
        assert!(fifo.retries + fifo.retry_exhausted > 0);
    }
}
