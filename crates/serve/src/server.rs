//! The serving façade: admit → drive → schedule → report.
//!
//! [`serve`] is the one call a deployment makes per load window: it offers
//! every requested session to the [`AdmissionController`] in order, drives
//! the admitted ones to exhaustion on `vrd-runtime`'s thread pool (real
//! NN-L/NN-S compute, one engine per session), then replays the merged
//! stamped work through the shared virtual NPU under **both** disciplines —
//! per-stream FIFO and cross-session batching — so every report carries its
//! own baseline. Rejected sessions cost nothing but the admission
//! projection.

use crate::admission::{
    AdmissionController, AdmissionProjection, RejectReason, SessionDemand, SloConfig,
};
use crate::error::{Result, ServeError};
use crate::sched::{schedule, SchedConfig, SchedPolicy, ScheduleOutcome};
use crate::session::{
    drive_session, drive_session_pipelined, DrivenSession, SessionSpec, SessionState,
};
use vr_dann::{PipelineOptions, VrDann};
use vrd_codec::EncodedVideo;
use vrd_nn::LargeNet;
use vrd_sim::SimConfig;
use vrd_video::Sequence;

/// One requested recognition session: a sequence and its encoded stream.
pub type SessionJob<'a> = (&'a Sequence, &'a EncodedVideo);

/// Server configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Nominal frame interval as a multiple of one NN-L inference time at
    /// the session's resolution — the per-session load knob (smaller =
    /// hotter). Scale-invariant, so quick and full benches stress the NPU
    /// comparably.
    pub load_factor: f64,
    /// Session `i` starts `i · stagger_frac · interval` into the window, so
    /// streams interleave instead of arriving in lockstep. A non-integer
    /// default spreads the sessions' *anchor phases* — lockstep or
    /// integer-staggered streams would deliver their NN-L frames
    /// back-to-back, hiding the switch cost FIFO pays on interleaved load.
    pub stagger_frac: f64,
    /// Shared-NPU scheduling knobs (queue bound, batch cap, shedding).
    pub sched: SchedConfig,
    /// Admission SLO.
    pub slo: SloConfig,
    /// Hardware cost model used for decode, service and switch timing.
    pub sim: SimConfig,
    /// Worker threads driving sessions (`None` = the runtime's detected
    /// count). Thread count never changes results, only wall time.
    pub threads: Option<usize>,
    /// Drive each admitted session on the engine's two-lane pipelined
    /// executor (`Some`) instead of the sequential stepper (`None`, the
    /// default). The stamped work — and therefore every scheduler outcome —
    /// is byte-identical either way (pinned by
    /// `pipelined_serve_matches_sequential`); only wall-clock time changes.
    pub pipeline: Option<PipelineOptions>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            load_factor: 3.0,
            stagger_frac: 1.3,
            sched: SchedConfig::default(),
            slo: SloConfig::default(),
            sim: SimConfig::default(),
            threads: None,
            pipeline: None,
        }
    }
}

/// Per-session outcome of one serve window.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// Sequence name.
    pub name: String,
    /// Where the session ended up.
    pub state: SessionState,
    /// Why it was rejected (rejected sessions only).
    pub reject: Option<RejectReason>,
    /// What admission projected when it accepted (admitted sessions only).
    pub projection: Option<AdmissionProjection>,
    /// Frames recognised (0 when rejected).
    pub frames: usize,
    /// Peak live pixel frames the session's source held.
    pub peak_live_frames: usize,
    /// Switches a dedicated in-order NPU would pay for this session alone.
    pub switches_in_order: usize,
    /// This session alone on dedicated hardware, in nanoseconds.
    pub isolated_ns: f64,
}

/// The outcome of one serve window.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Per-request outcomes, request order.
    pub sessions: Vec<SessionReport>,
    /// Sessions admitted.
    pub admitted: usize,
    /// Sessions rejected by admission control.
    pub rejected: usize,
    /// Projected NPU utilisation over the admitted set.
    pub projected_utilization: f64,
    /// The shared NPU under per-stream FIFO (the baseline).
    pub fifo: ScheduleOutcome,
    /// The shared NPU under cross-session batching (the proposed policy).
    pub batched: ScheduleOutcome,
}

impl ServeReport {
    /// Model switches the batching scheduler saved over per-stream FIFO.
    pub fn switches_saved(&self) -> i64 {
        self.fifo.switches as i64 - self.batched.switches as i64
    }
}

/// The admit-and-drive front half of [`serve`]: admission decisions in
/// request order plus every admitted session driven to exhaustion. Exposed
/// so fault-injection harnesses (`chaos_bench`) can pay the compute once
/// and replay the same driven work under many fault plans.
///
/// # Errors
/// Returns [`ServeError::Session`] when an admitted session's decode or
/// engine fails.
#[allow(clippy::type_complexity)]
pub fn admit_and_drive(
    model: &VrDann,
    requests: &[SessionJob<'_>],
    cfg: &ServeConfig,
) -> Result<(
    Vec<std::result::Result<AdmissionProjection, RejectReason>>,
    Vec<DrivenSession>,
    f64,
)> {
    let ops_per_ns = cfg.sim.npu_ops_per_ns();

    // Admission pass: request order, deterministic.
    let mut controller = AdmissionController::new(cfg.slo, cfg.sched.batch_cap, cfg.sim);
    let mut decisions: Vec<std::result::Result<AdmissionProjection, RejectReason>> =
        Vec::with_capacity(requests.len());
    let mut admitted_jobs: Vec<(usize, usize, SessionSpec)> = Vec::new();
    for (r, (seq, encoded)) in requests.iter().enumerate() {
        let nnl_ns = LargeNet::new(model.config().segment_profile).ops(seq.width(), seq.height())
            as f64
            / ops_per_ns;
        let interval = cfg.load_factor * nnl_ns;
        let demand = SessionDemand::estimate(model, seq, encoded, interval, &cfg.sim);
        let decision = controller.try_admit(&demand);
        if decision.is_ok() {
            let session = admitted_jobs.len();
            let spec = SessionSpec {
                start_offset_ns: session as f64 * cfg.stagger_frac * interval,
                frame_interval_ns: interval,
            };
            admitted_jobs.push((session, r, spec));
        }
        decisions.push(decision);
    }

    // Drive every admitted session concurrently — the real compute phase.
    let threads = cfg.threads.unwrap_or_else(vrd_runtime::max_threads);
    let driven: Vec<vr_dann::Result<DrivenSession>> =
        vrd_runtime::parallel_map_with(&admitted_jobs, threads, |&(session, r, spec)| {
            let (seq, encoded) = requests[r];
            match &cfg.pipeline {
                Some(pipe) => {
                    drive_session_pipelined(model, session, seq, encoded, &spec, &cfg.sim, pipe)
                }
                None => drive_session(model, session, seq, encoded, &spec, &cfg.sim),
            }
        });
    let mut sessions_driven = Vec::with_capacity(driven.len());
    for (d, &(session, r, _)) in driven.into_iter().zip(&admitted_jobs) {
        sessions_driven.push(d.map_err(|source| ServeError::Session {
            session,
            name: requests[r].0.name.clone(),
            source,
        })?);
    }
    Ok((decisions, sessions_driven, controller.utilization()))
}

/// Serves one window of sessions: admission in request order, admitted
/// sessions driven concurrently, the merged work replayed under FIFO and
/// batching. Deterministic for fixed inputs and configuration.
///
/// # Errors
/// Propagates decode/engine failures from any admitted session (with the
/// session's identity attached) and scheduler invariant violations.
pub fn serve(
    model: &VrDann,
    requests: &[SessionJob<'_>],
    cfg: &ServeConfig,
) -> Result<ServeReport> {
    let (decisions, sessions_driven, projected_utilization) =
        admit_and_drive(model, requests, cfg)?;

    // Replay the merged work under both disciplines.
    let fifo = schedule(&sessions_driven, SchedPolicy::Fifo, &cfg.sched, &cfg.sim)?;
    let batched = schedule(&sessions_driven, SchedPolicy::Batch, &cfg.sched, &cfg.sim)?;

    // Stitch per-request reports back into request order.
    let mut reports = Vec::with_capacity(requests.len());
    let mut next_admitted = 0usize;
    for (r, (seq, _)) in requests.iter().enumerate() {
        let report = match &decisions[r] {
            Ok(projection) => {
                let d = &sessions_driven[next_admitted];
                next_admitted += 1;
                SessionReport {
                    name: seq.name.clone(),
                    state: SessionState::Drained,
                    reject: None,
                    projection: Some(*projection),
                    frames: d.frames,
                    peak_live_frames: d.peak_live_frames,
                    switches_in_order: d.switches_in_order,
                    isolated_ns: d.isolated_ns,
                }
            }
            Err(reason) => SessionReport {
                name: seq.name.clone(),
                state: SessionState::Rejected,
                reject: Some(*reason),
                projection: None,
                frames: 0,
                peak_live_frames: 0,
                switches_in_order: 0,
                isolated_ns: 0.0,
            },
        };
        reports.push(report);
    }

    Ok(ServeReport {
        admitted: sessions_driven.len(),
        rejected: requests.len() - sessions_driven.len(),
        projected_utilization,
        sessions: reports,
        fifo,
        batched,
    })
}
