//! One admitted session: a paced decoder lane feeding a resumable
//! [`PipelineEngine`].
//!
//! The session driver is where the real recognition work happens — it pulls
//! [`DecodedUnit`](vrd_codec::DecodedUnit)s from a
//! [`StrictFrameSource`](vrd_codec::StrictFrameSource) and advances the
//! engine one `step()` at a time, so NN-L/NN-S actually run and the masks
//! are produced exactly as a standalone
//! [`run_segmentation`](vr_dann::VrDann::run_segmentation) call would.
//! Alongside the compute it clocks a per-session *decoder lane* with
//! `vrd-sim`'s decoder timing model: frame `k` arrives at
//! `start_offset + k·interval`, the decoder serves frames sequentially
//! (full reconstruction for anchors and NN-L-rerouted frames, MV-only
//! extraction otherwise), and every emitted [`WorkItem`] carries the
//! hand-over instant the shared-NPU scheduler replays.

use vr_dann::engine::{SegTask, StrictPolicy};
use vr_dann::{ComputeMode, EngineCheckpoint, PipelineEngine, Result, VrDann};
use vrd_codec::{EncodedVideo, FrameSource, FrameType, StrictFrameSource};
use vrd_nn::LargeNet;
use vrd_sim::{simulate_stream, ExecMode, ParallelOptions, SimConfig};
use vrd_video::Sequence;

/// Pacing of one session's arrival process (its camera / network feed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionSpec {
    /// When the session's first frame reaches the decoder, in nanoseconds.
    pub start_offset_ns: f64,
    /// Nominal inter-frame arrival gap, in nanoseconds.
    pub frame_interval_ns: f64,
}

/// Where a session ended up in the serving lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Turned away by admission control before any work ran.
    Rejected,
    /// Admitted, driven to exhaustion, every frame accounted for.
    Drained,
}

/// One NPU work item emitted by a session's engine, stamped with its
/// decoder hand-over time.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkItem {
    /// Owning session (index into the admitted set).
    pub session: usize,
    /// Per-session emission order (the engine's decode order).
    pub idx: usize,
    /// Display index of the frame.
    pub display: u32,
    /// Codec frame type.
    pub ftype: FrameType,
    /// NPU operations of the inference.
    pub ops: u64,
    /// Whether the item needs the large model resident.
    pub uses_large_model: bool,
    /// Nominal arrival of the frame at the decoder (latency baseline).
    pub arrival_ns: f64,
    /// When the decoder lane hands the item to the NPU queues.
    pub ready_ns: f64,
}

/// A host-side recovery point for one driven session: everything needed to
/// resume the decode → engine → stamp loop after the shared NPU crashes.
/// The engine snapshot holds the O(GOP) reference-mask window; the decoder
/// lane resumes from `decode_clock_ns` skipping `units_consumed` units, so
/// a replayed tail re-emits byte-identical work items.
#[derive(Debug, Clone)]
pub struct SessionCheckpoint {
    /// Work items already emitted when the snapshot was taken.
    pub items_emitted: usize,
    /// Decoded units already consumed from the bitstream.
    pub units_consumed: usize,
    /// Decoder-lane clock at the snapshot.
    pub decode_clock_ns: f64,
    /// The engine's resumable state (reference window, anchor ring,
    /// concealment counters).
    pub engine: EngineCheckpoint,
}

/// Everything driving one session produced: the stamped work items for the
/// shared-NPU scheduler plus the engine's run summary.
#[derive(Debug, Clone, PartialEq)]
pub struct DrivenSession {
    /// Sequence name (for reports).
    pub name: String,
    /// Index into the admitted set.
    pub session: usize,
    /// Compute mode the session's model runs NN-S in. The stamped work is
    /// mode-invariant (see `int8_session_emits_identical_work`); the chaos
    /// scheduler uses this as the session's degradation-ladder floor and
    /// the admission controller folds it into utilisation estimates.
    pub compute: ComputeMode,
    /// NPU work in emission order, decode-lane times stamped.
    pub items: Vec<WorkItem>,
    /// Frames the engine produced output for.
    pub frames: usize,
    /// Peak reconstructed pixel frames the source held alive (the
    /// bounded-memory guarantee carries over to serving).
    pub peak_live_frames: usize,
    /// Total NPU operations over the stream.
    pub total_ops: u64,
    /// NN-L ↔ NN-S switches a dedicated in-order NPU would pay for this
    /// session alone — the per-stream FIFO switch baseline.
    pub switches_in_order: usize,
    /// End-to-end time of this session alone on a dedicated VR-DANN-parallel
    /// SoC (via [`simulate_stream`]) — the no-contention latency floor.
    pub isolated_ns: f64,
}

/// Drives one session to exhaustion: decode → engine step → stamped work
/// item, then closes the engine and simulates the isolated-hardware
/// baseline. The produced masks are identical to a standalone
/// [`run_segmentation`](vr_dann::VrDann::run_segmentation) call; serving
/// changes *when* work runs, never *what* it computes.
///
/// # Errors
/// Propagates bitstream decode errors and engine reconstruction failures.
pub fn drive_session(
    model: &VrDann,
    session: usize,
    seq: &Sequence,
    encoded: &EncodedVideo,
    spec: &SessionSpec,
    sim: &SimConfig,
) -> Result<DrivenSession> {
    drive_core(model, session, seq, encoded, spec, sim, None)
}

/// [`drive_session`] that also snapshots a [`SessionCheckpoint`] after
/// every NN-L anchor — the natural recovery points: each anchor refreshes
/// the reference window the following B-frames lean on, so restoring at an
/// anchor bounds the replay to one GOP.
///
/// # Errors
/// Propagates bitstream decode errors and engine reconstruction failures.
pub fn drive_session_checkpointed(
    model: &VrDann,
    session: usize,
    seq: &Sequence,
    encoded: &EncodedVideo,
    spec: &SessionSpec,
    sim: &SimConfig,
) -> Result<(DrivenSession, Vec<SessionCheckpoint>)> {
    let mut ckpts = Vec::new();
    let driven = drive_core(model, session, seq, encoded, spec, sim, Some(&mut ckpts))?;
    Ok((driven, ckpts))
}

fn drive_core(
    model: &VrDann,
    session: usize,
    seq: &Sequence,
    encoded: &EncodedVideo,
    spec: &SessionSpec,
    sim: &SimConfig,
    mut checkpoints: Option<&mut Vec<SessionCheckpoint>>,
) -> Result<DrivenSession> {
    let mut source = StrictFrameSource::new(&encoded.bitstream)?;
    let info = source.info();
    let task = SegTask::new(
        seq,
        LargeNet::new(model.config().segment_profile),
        model.config().seed,
        &info,
    );
    let mut engine =
        PipelineEngine::new(model.config(), model.nns(), task, StrictPolicy::default());
    engine.prime(&info, &[]);

    let px = (info.width * info.height) as f64;
    let mut items: Vec<WorkItem> = Vec::with_capacity(info.n_frames);
    let mut t_decode = spec.start_offset_ns;
    let mut k = 0usize;
    while let Some(unit) = source.next_unit() {
        let unit = unit?;
        let arrival = spec.start_offset_ns + k as f64 * spec.frame_interval_ns;
        k += 1;
        let Some(work) = engine.step(unit)? else {
            continue;
        };
        let cpp = if work.full_decode {
            sim.decoder.cycles_per_pixel_full
        } else {
            sim.decoder.cycles_per_pixel_mv
        };
        let decode_ns = px * cpp / sim.decoder.freq_hz * 1e9;
        t_decode = t_decode.max(arrival) + decode_ns;
        items.push(WorkItem {
            session,
            idx: items.len(),
            display: work.display,
            ftype: work.ftype,
            ops: work.ops,
            uses_large_model: work.uses_large_model,
            arrival_ns: arrival,
            ready_ns: t_decode,
        });
        if work.uses_large_model {
            if let Some(sink) = checkpoints.as_deref_mut() {
                sink.push(SessionCheckpoint {
                    items_emitted: items.len(),
                    units_consumed: k,
                    decode_clock_ns: t_decode,
                    engine: engine.checkpoint()?,
                });
            }
        }
    }
    let totals = source.totals();
    let peak = source.peak_live_frames();
    let run = engine.finish(totals, peak)?;
    let isolated = simulate_stream(
        run.trace.frames.iter(),
        run.trace.scheme,
        run.trace.width,
        run.trace.height,
        run.trace.mb_size,
        ExecMode::VrDannParallel(ParallelOptions::default()),
        sim,
    );
    Ok(DrivenSession {
        name: seq.name.clone(),
        session,
        compute: model.config().compute,
        frames: run.outputs.len(),
        peak_live_frames: run.peak_live_frames,
        total_ops: run.trace.total_ops(),
        switches_in_order: run.trace.model_switches_in_order(),
        isolated_ns: isolated.total_ns,
        items,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_dann::{ComputeMode, TrainTask, VrDannConfig};
    use vrd_video::davis::{davis_sequence, davis_train_suite, SuiteConfig};

    fn tiny_model() -> (VrDann, SuiteConfig) {
        let cfg = SuiteConfig::tiny();
        let train = davis_train_suite(&cfg, 2);
        let vr_cfg = VrDannConfig {
            nns_hidden: 4,
            ..VrDannConfig::default()
        };
        (
            VrDann::train(&train, TrainTask::Segmentation, vr_cfg).unwrap(),
            cfg,
        )
    }

    #[test]
    fn driven_session_matches_standalone_run() {
        let (model, cfg) = tiny_model();
        let seq = davis_sequence("cows", &cfg).unwrap();
        let encoded = model.encode(&seq).unwrap();
        let spec = SessionSpec {
            start_offset_ns: 0.0,
            frame_interval_ns: 1e6,
        };
        let sim = SimConfig::default();
        let driven = drive_session(&model, 0, &seq, &encoded, &spec, &sim).unwrap();
        let solo = model.run_segmentation(&seq, &encoded).unwrap();
        assert_eq!(driven.frames, solo.masks.len());
        assert_eq!(driven.items.len(), solo.trace.frames.len());
        assert_eq!(driven.total_ops, solo.trace.total_ops());
        assert_eq!(
            driven.switches_in_order,
            solo.trace.model_switches_in_order()
        );
        assert_eq!(driven.peak_live_frames, solo.peak_live_frames);
        for (item, tf) in driven.items.iter().zip(&solo.trace.frames) {
            assert_eq!(item.display, tf.display);
            assert_eq!(item.ops, tf.kind.ops());
            assert_eq!(item.uses_large_model, tf.kind.uses_large_model());
        }
        assert!(driven.isolated_ns > 0.0);
    }

    #[test]
    fn int8_session_emits_identical_work() {
        // The NPU accounting is compute-mode-invariant: a session driven on
        // the quantized path puts byte-identical work on the scheduler, so
        // admission control and SLO accounting never depend on the mode.
        let (model, cfg) = tiny_model();
        let seq = davis_sequence("cows", &cfg).unwrap();
        let encoded = model.encode(&seq).unwrap();
        let spec = SessionSpec {
            start_offset_ns: 0.0,
            frame_interval_ns: 1e6,
        };
        let sim = SimConfig::default();
        let f32_run = drive_session(&model, 0, &seq, &encoded, &spec, &sim).unwrap();
        let int8_model = model.clone().with_compute(ComputeMode::Int8);
        let int8_run = drive_session(&int8_model, 0, &seq, &encoded, &spec, &sim).unwrap();
        assert_eq!(f32_run.items, int8_run.items);
        assert_eq!(f32_run.frames, int8_run.frames);
        assert_eq!(f32_run.total_ops, int8_run.total_ops);
        assert_eq!(f32_run.switches_in_order, int8_run.switches_in_order);
        assert_eq!(f32_run.isolated_ns, int8_run.isolated_ns);
        // The mode itself is carried for the chaos ladder and admission.
        assert_eq!(f32_run.compute, ComputeMode::F32Reference);
        assert_eq!(int8_run.compute, ComputeMode::Int8);
    }

    #[test]
    fn checkpointed_drive_is_identical_and_snapshots_every_anchor() {
        let (model, cfg) = tiny_model();
        let seq = davis_sequence("cows", &cfg).unwrap();
        let encoded = model.encode(&seq).unwrap();
        let spec = SessionSpec {
            start_offset_ns: 0.0,
            frame_interval_ns: 1e6,
        };
        let sim = SimConfig::default();
        let plain = drive_session(&model, 0, &seq, &encoded, &spec, &sim).unwrap();
        let (driven, ckpts) =
            drive_session_checkpointed(&model, 0, &seq, &encoded, &spec, &sim).unwrap();
        assert_eq!(driven, plain, "checkpointing must not perturb the drive");
        let anchors = plain.items.iter().filter(|i| i.uses_large_model).count();
        assert_eq!(ckpts.len(), anchors);
        for w in ckpts.windows(2) {
            assert!(w[0].items_emitted < w[1].items_emitted);
            assert!(w[0].units_consumed < w[1].units_consumed);
            assert!(w[0].decode_clock_ns <= w[1].decode_clock_ns);
        }
        for c in &ckpts {
            assert_eq!(c.engine.frames_emitted(), c.items_emitted);
        }
    }

    #[test]
    fn crash_resume_from_checkpoint_reemits_identical_tail() {
        // Simulate an NPU crash mid-session: the host rolls the engine
        // back to the last anchor checkpoint and replays the decode walk
        // from there. The re-emitted tail must be byte-identical — work
        // kinds, ops AND decoder-lane stamps.
        let (model, cfg) = tiny_model();
        let seq = davis_sequence("dog", &cfg).unwrap();
        let encoded = model.encode(&seq).unwrap();
        let spec = SessionSpec {
            start_offset_ns: 250.0,
            frame_interval_ns: 1.5e6,
        };
        let sim = SimConfig::default();
        let (straight, ckpts) =
            drive_session_checkpointed(&model, 2, &seq, &encoded, &spec, &sim).unwrap();
        assert!(ckpts.len() >= 2, "need a mid-stream anchor to resume from");
        let ckpt = &ckpts[ckpts.len() / 2];
        assert!(ckpt.items_emitted < straight.items.len());

        // Re-drive up to the crash point on a live engine, then restore.
        let mut source = StrictFrameSource::new(&encoded.bitstream).unwrap();
        let info = source.info();
        let task = SegTask::new(
            &seq,
            LargeNet::new(model.config().segment_profile),
            model.config().seed,
            &info,
        );
        let mut engine =
            PipelineEngine::new(model.config(), model.nns(), task, StrictPolicy::default());
        engine.prime(&info, &[]);
        for _ in 0..ckpt.units_consumed + 2 {
            if let Some(unit) = source.next_unit() {
                engine.step(unit.unwrap()).unwrap();
            }
        }
        engine.restore(&ckpt.engine).unwrap();

        // Recovery walk: fresh source, skip the consumed units, resume the
        // decoder-lane clock from the snapshot.
        let mut source = StrictFrameSource::new(&encoded.bitstream).unwrap();
        for _ in 0..ckpt.units_consumed {
            source.next_unit().unwrap().unwrap();
        }
        let px = (info.width * info.height) as f64;
        let mut t_decode = ckpt.decode_clock_ns;
        let mut k = ckpt.units_consumed;
        let mut tail: Vec<WorkItem> = Vec::new();
        while let Some(unit) = source.next_unit() {
            let arrival = spec.start_offset_ns + k as f64 * spec.frame_interval_ns;
            k += 1;
            let Some(work) = engine.step(unit.unwrap()).unwrap() else {
                continue;
            };
            let cpp = if work.full_decode {
                sim.decoder.cycles_per_pixel_full
            } else {
                sim.decoder.cycles_per_pixel_mv
            };
            t_decode = t_decode.max(arrival) + px * cpp / sim.decoder.freq_hz * 1e9;
            tail.push(WorkItem {
                session: 2,
                idx: ckpt.items_emitted + tail.len(),
                display: work.display,
                ftype: work.ftype,
                ops: work.ops,
                uses_large_model: work.uses_large_model,
                arrival_ns: arrival,
                ready_ns: t_decode,
            });
        }
        assert_eq!(tail, straight.items[ckpt.items_emitted..]);
        let run = engine
            .finish(source.totals(), source.peak_live_frames())
            .unwrap();
        assert_eq!(run.outputs.len(), straight.frames);
    }

    #[test]
    fn decode_lane_is_sequential_and_paced() {
        let (model, cfg) = tiny_model();
        let seq = davis_sequence("dog", &cfg).unwrap();
        let encoded = model.encode(&seq).unwrap();
        let interval = 2e6;
        let spec = SessionSpec {
            start_offset_ns: 500.0,
            frame_interval_ns: interval,
        };
        let sim = SimConfig::default();
        let driven = drive_session(&model, 3, &seq, &encoded, &spec, &sim).unwrap();
        for (k, item) in driven.items.iter().enumerate() {
            assert_eq!(item.session, 3);
            assert_eq!(item.idx, k);
            // The decoder cannot hand a frame over before it arrived.
            assert!(item.ready_ns > item.arrival_ns);
            // Arrivals are paced by the configured interval.
            assert!((item.arrival_ns - (500.0 + k as f64 * interval)).abs() < 1e-6);
            // Hand-over order is decode order.
            if k > 0 {
                assert!(item.ready_ns >= driven.items[k - 1].ready_ns);
            }
        }
    }
}
