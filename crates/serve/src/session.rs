//! One admitted session: a paced decoder lane feeding a resumable
//! [`PipelineEngine`].
//!
//! The session driver is where the real recognition work happens — it pulls
//! [`DecodedUnit`](vrd_codec::DecodedUnit)s from a
//! [`StrictFrameSource`](vrd_codec::StrictFrameSource) and advances the
//! engine one `step()` at a time, so NN-L/NN-S actually run and the masks
//! are produced exactly as a standalone
//! [`run_segmentation`](vr_dann::VrDann::run_segmentation) call would.
//! Alongside the compute it clocks a per-session *decoder lane* with
//! `vrd-sim`'s decoder timing model: frame `k` arrives at
//! `start_offset + k·interval`, the decoder serves frames sequentially
//! (full reconstruction for anchors and NN-L-rerouted frames, MV-only
//! extraction otherwise), and every emitted [`WorkItem`] carries the
//! hand-over instant the shared-NPU scheduler replays.

use vr_dann::engine::{SegTask, StrictPolicy};
use vr_dann::{
    ComputeMode, EngineCheckpoint, PipelineEngine, PipelineOptions, PipelineWave, Result, VrDann,
};
use vrd_codec::{EncodedVideo, FrameSource, FrameType, StrictFrameSource};
use vrd_nn::LargeNet;
use vrd_sim::{simulate_stream, ExecMode, ParallelOptions, SimConfig};
use vrd_video::Sequence;

/// Pacing of one session's arrival process (its camera / network feed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionSpec {
    /// When the session's first frame reaches the decoder, in nanoseconds.
    pub start_offset_ns: f64,
    /// Nominal inter-frame arrival gap, in nanoseconds.
    pub frame_interval_ns: f64,
}

/// Where a session ended up in the serving lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Turned away by admission control before any work ran.
    Rejected,
    /// Admitted, driven to exhaustion, every frame accounted for.
    Drained,
}

/// One NPU work item emitted by a session's engine, stamped with its
/// decoder hand-over time.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkItem {
    /// Owning session (index into the admitted set).
    pub session: usize,
    /// Per-session emission order (the engine's decode order).
    pub idx: usize,
    /// Display index of the frame.
    pub display: u32,
    /// Codec frame type.
    pub ftype: FrameType,
    /// NPU operations of the inference.
    pub ops: u64,
    /// Whether the item needs the large model resident.
    pub uses_large_model: bool,
    /// Nominal arrival of the frame at the decoder (latency baseline).
    pub arrival_ns: f64,
    /// When the decoder lane hands the item to the NPU queues.
    pub ready_ns: f64,
}

/// A host-side recovery point for one driven session: everything needed to
/// resume the decode → engine → stamp loop after the shared NPU crashes.
/// The engine snapshot holds the O(GOP) reference-mask window; the decoder
/// lane resumes from `decode_clock_ns` skipping `units_consumed` units, so
/// a replayed tail re-emits byte-identical work items.
#[derive(Debug, Clone)]
pub struct SessionCheckpoint {
    /// Work items already emitted when the snapshot was taken.
    pub items_emitted: usize,
    /// Decoded units already consumed from the bitstream.
    pub units_consumed: usize,
    /// Decoder-lane clock at the snapshot.
    pub decode_clock_ns: f64,
    /// The engine's resumable state (reference window, anchor ring,
    /// concealment counters).
    pub engine: EngineCheckpoint,
}

/// Everything driving one session produced: the stamped work items for the
/// shared-NPU scheduler plus the engine's run summary.
#[derive(Debug, Clone, PartialEq)]
pub struct DrivenSession {
    /// Sequence name (for reports).
    pub name: String,
    /// Index into the admitted set.
    pub session: usize,
    /// Compute mode the session's model runs NN-S in. The stamped work is
    /// mode-invariant (see `int8_session_emits_identical_work`); the chaos
    /// scheduler uses this as the session's degradation-ladder floor and
    /// the admission controller folds it into utilisation estimates.
    pub compute: ComputeMode,
    /// NPU work in emission order, decode-lane times stamped.
    pub items: Vec<WorkItem>,
    /// Frames the engine produced output for.
    pub frames: usize,
    /// Peak reconstructed pixel frames the source held alive (the
    /// bounded-memory guarantee carries over to serving).
    pub peak_live_frames: usize,
    /// Total NPU operations over the stream.
    pub total_ops: u64,
    /// NN-L ↔ NN-S switches a dedicated in-order NPU would pay for this
    /// session alone — the per-stream FIFO switch baseline.
    pub switches_in_order: usize,
    /// End-to-end time of this session alone on a dedicated VR-DANN-parallel
    /// SoC (via [`simulate_stream`]) — the no-contention latency floor.
    pub isolated_ns: f64,
}

/// One engine emission of a [`SessionTemplate`]: everything a work item
/// carries except the pacing stamps, which are applied per instantiation.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateItem {
    /// Display index of the frame.
    pub display: u32,
    /// Codec frame type.
    pub ftype: FrameType,
    /// NPU operations of the inference.
    pub ops: u64,
    /// Whether the item needs the large model resident.
    pub uses_large_model: bool,
    /// Index of the decoded unit whose arrival triggered this emission —
    /// the `k` in `arrival = offset + k·interval`.
    pub arrive_idx: usize,
    /// Decoder service time of the triggering unit (full reconstruction
    /// for anchors and rerouted frames, MV-only extraction otherwise).
    pub decode_ns: f64,
}

/// One stream driven through the engine *once*, pacing left symbolic: the
/// real NN-L/NN-S compute and the decoder service times are captured, and
/// [`SessionTemplate::instantiate`] restamps them for any
/// [`SessionSpec`] in O(items) — no decode, no inference. This is what
/// lets the fleet layer serve 64+ concurrent sessions drawn from a small
/// library of distinct streams without paying the compute per session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionTemplate {
    /// Sequence name (for reports).
    pub name: String,
    /// Compute mode the template's model runs NN-S in.
    pub compute: ComputeMode,
    /// Engine emissions in decode order, pacing unstamped.
    pub items: Vec<TemplateItem>,
    /// Frames the engine produced output for.
    pub frames: usize,
    /// Peak reconstructed pixel frames the source held alive.
    pub peak_live_frames: usize,
    /// Total NPU operations over the stream.
    pub total_ops: u64,
    /// NN-L ↔ NN-S switches a dedicated in-order NPU would pay.
    pub switches_in_order: usize,
    /// This stream alone on dedicated hardware, in nanoseconds.
    pub isolated_ns: f64,
}

impl SessionTemplate {
    /// Stamps the full template for one session spec. Byte-identical to
    /// driving the stream live under the same spec (pinned by
    /// `template_instantiation_matches_live_drive`).
    pub fn instantiate(&self, session: usize, spec: &SessionSpec) -> DrivenSession {
        self.instantiate_prefix(session, spec, self.items.len())
    }

    /// Stamps at most the first `max_items` emissions — the churn path: a
    /// session that leaves mid-stream offers only a prefix of its work.
    /// For a strict prefix `switches_in_order` is recomputed over the kept
    /// items and `isolated_ns` is prorated by the kept share of the NPU
    /// operations (an estimate; the full-length instantiation reports the
    /// exact simulated figure).
    pub fn instantiate_prefix(
        &self,
        session: usize,
        spec: &SessionSpec,
        max_items: usize,
    ) -> DrivenSession {
        let take = max_items.min(self.items.len());
        let mut items = Vec::with_capacity(take);
        let mut t_decode = spec.start_offset_ns;
        for t in &self.items[..take] {
            let arrival = spec.start_offset_ns + t.arrive_idx as f64 * spec.frame_interval_ns;
            t_decode = t_decode.max(arrival) + t.decode_ns;
            items.push(WorkItem {
                session,
                idx: items.len(),
                display: t.display,
                ftype: t.ftype,
                ops: t.ops,
                uses_large_model: t.uses_large_model,
                arrival_ns: arrival,
                ready_ns: t_decode,
            });
        }
        let full = take == self.items.len();
        let total_ops: u64 = items.iter().map(|i| i.ops).sum();
        let ops_frac = if self.total_ops > 0 {
            total_ops as f64 / self.total_ops as f64
        } else {
            1.0
        };
        DrivenSession {
            name: self.name.clone(),
            session,
            compute: self.compute,
            frames: if full { self.frames } else { take },
            peak_live_frames: self.peak_live_frames,
            total_ops,
            switches_in_order: if full {
                self.switches_in_order
            } else {
                items
                    .windows(2)
                    .filter(|w| w[0].uses_large_model != w[1].uses_large_model)
                    .count()
            },
            isolated_ns: if full {
                self.isolated_ns
            } else {
                self.isolated_ns * ops_frac
            },
            items,
        }
    }
}

/// Drives one stream through the engine and captures it as a reusable
/// [`SessionTemplate`]: the real compute runs exactly once, every
/// [`SessionSpec`] instantiation afterwards is pure arithmetic.
///
/// # Errors
/// Propagates bitstream decode errors and engine reconstruction failures.
pub fn drive_template(
    model: &VrDann,
    seq: &Sequence,
    encoded: &EncodedVideo,
    sim: &SimConfig,
) -> Result<SessionTemplate> {
    let mut source = StrictFrameSource::new(&encoded.bitstream)?;
    let info = source.info();
    let task = SegTask::new(
        seq,
        LargeNet::new(model.config().segment_profile),
        model.config().seed,
        &info,
    );
    let mut engine =
        PipelineEngine::new(model.config(), model.nns(), task, StrictPolicy::default());
    engine.prime(&info, &[]);

    let px = (info.width * info.height) as f64;
    let mut items: Vec<TemplateItem> = Vec::with_capacity(info.n_frames);
    let mut k = 0usize;
    while let Some(unit) = source.next_unit() {
        let unit = unit?;
        let arrive_idx = k;
        k += 1;
        let Some(work) = engine.step(unit)? else {
            continue;
        };
        let cpp = if work.full_decode {
            sim.decoder.cycles_per_pixel_full
        } else {
            sim.decoder.cycles_per_pixel_mv
        };
        items.push(TemplateItem {
            display: work.display,
            ftype: work.ftype,
            ops: work.ops,
            uses_large_model: work.uses_large_model,
            arrive_idx,
            decode_ns: px * cpp / sim.decoder.freq_hz * 1e9,
        });
    }
    let totals = source.totals();
    let peak = source.peak_live_frames();
    let run = engine.finish(totals, peak)?;
    let isolated = simulate_stream(
        run.trace.frames.iter(),
        run.trace.scheme,
        run.trace.width,
        run.trace.height,
        run.trace.mb_size,
        ExecMode::VrDannParallel(ParallelOptions::default()),
        sim,
    );
    Ok(SessionTemplate {
        name: seq.name.clone(),
        compute: model.config().compute,
        frames: run.outputs.len(),
        peak_live_frames: run.peak_live_frames,
        total_ops: run.trace.total_ops(),
        switches_in_order: run.trace.model_switches_in_order(),
        isolated_ns: isolated.total_ns,
        items,
    })
}

/// [`drive_template`] on the engine's two-lane pipelined executor: a
/// decode-lane thread owns the [`StrictFrameSource`] and feeds units
/// through a bounded stage channel while this thread plans them and fans
/// B-frame reconstruction out wave-front-style
/// ([`PipelineEngine::step_pipelined`]).
///
/// The captured template is **byte-identical** to the sequential
/// [`drive_template`] — every [`TemplateItem`] derives from the engine's
/// plan-time [`StepWork`](vr_dann::StepWork), which executes sequentially
/// in decode order on both paths, so the shared-NPU scheduler's accounting
/// (ops, model residency, switch counts, decoder service times) never
/// depends on how the session was driven. Pinned by
/// `pipelined_drive_emits_identical_schedule`.
///
/// # Errors
/// Propagates bitstream decode errors and engine reconstruction failures.
pub fn drive_template_pipelined(
    model: &VrDann,
    seq: &Sequence,
    encoded: &EncodedVideo,
    sim: &SimConfig,
    pipe: &PipelineOptions,
) -> Result<SessionTemplate> {
    let source = StrictFrameSource::new(&encoded.bitstream)?;
    let info = source.info();
    let task = SegTask::new(
        seq,
        LargeNet::new(model.config().segment_profile),
        model.config().seed,
        &info,
    );
    let mut engine =
        PipelineEngine::new(model.config(), model.nns(), task, StrictPolicy::default());
    engine.prime(&info, &[]);

    let px = (info.width * info.height) as f64;
    let mut wave = PipelineWave::new(pipe.resolved_threads());
    let mut items: Vec<TemplateItem> = Vec::with_capacity(info.n_frames);
    let (tx, rx) = vrd_runtime::stage_channel(pipe.resolved_capacity());
    let (stepped, totals, peak) = std::thread::scope(|s| {
        let decode_lane = s.spawn(move || {
            let mut source = source;
            let mut k = 0usize;
            while let Some(unit) = source.next_unit() {
                let fatal = unit.is_err();
                if tx.send((k, unit)).is_err() || fatal {
                    break;
                }
                k += 1;
            }
            (source.totals(), source.peak_live_frames())
        });
        let mut stepped = Ok(());
        while let Some((arrive_idx, unit)) = rx.recv() {
            let advanced = (|| -> Result<()> {
                let Some(work) = engine.step_pipelined(unit?, &mut wave)? else {
                    return Ok(());
                };
                let cpp = if work.full_decode {
                    sim.decoder.cycles_per_pixel_full
                } else {
                    sim.decoder.cycles_per_pixel_mv
                };
                items.push(TemplateItem {
                    display: work.display,
                    ftype: work.ftype,
                    ops: work.ops,
                    uses_large_model: work.uses_large_model,
                    arrive_idx,
                    decode_ns: px * cpp / sim.decoder.freq_hz * 1e9,
                });
                Ok(())
            })();
            if let Err(e) = advanced {
                stepped = Err(e);
                break;
            }
        }
        engine.note_peak_inflight(rx.peak_len());
        drop(rx);
        let (totals, peak) = decode_lane.join().expect("decode lane never panics");
        (stepped, totals, peak)
    });
    stepped?;
    engine.drain_wave(&mut wave)?;
    let run = engine.finish(totals, peak)?;
    let isolated = simulate_stream(
        run.trace.frames.iter(),
        run.trace.scheme,
        run.trace.width,
        run.trace.height,
        run.trace.mb_size,
        ExecMode::VrDannParallel(ParallelOptions::default()),
        sim,
    );
    Ok(SessionTemplate {
        name: seq.name.clone(),
        compute: model.config().compute,
        frames: run.outputs.len(),
        peak_live_frames: run.peak_live_frames,
        total_ops: run.trace.total_ops(),
        switches_in_order: run.trace.model_switches_in_order(),
        isolated_ns: isolated.total_ns,
        items,
    })
}

/// Drives one session to exhaustion: decode → engine step → stamped work
/// item, then closes the engine and simulates the isolated-hardware
/// baseline. The produced masks are identical to a standalone
/// [`run_segmentation`](vr_dann::VrDann::run_segmentation) call; serving
/// changes *when* work runs, never *what* it computes.
///
/// # Errors
/// Propagates bitstream decode errors and engine reconstruction failures.
pub fn drive_session(
    model: &VrDann,
    session: usize,
    seq: &Sequence,
    encoded: &EncodedVideo,
    spec: &SessionSpec,
    sim: &SimConfig,
) -> Result<DrivenSession> {
    Ok(drive_template(model, seq, encoded, sim)?.instantiate(session, spec))
}

/// [`drive_session`] on the pipelined executor. The stamped work items are
/// byte-identical to the sequential drive (see
/// [`drive_template_pipelined`]); only wall-clock time changes.
///
/// # Errors
/// Propagates bitstream decode errors and engine reconstruction failures.
pub fn drive_session_pipelined(
    model: &VrDann,
    session: usize,
    seq: &Sequence,
    encoded: &EncodedVideo,
    spec: &SessionSpec,
    sim: &SimConfig,
    pipe: &PipelineOptions,
) -> Result<DrivenSession> {
    Ok(drive_template_pipelined(model, seq, encoded, sim, pipe)?.instantiate(session, spec))
}

/// [`drive_session`] that also snapshots a [`SessionCheckpoint`] after
/// every NN-L anchor — the natural recovery points: each anchor refreshes
/// the reference window the following B-frames lean on, so restoring at an
/// anchor bounds the replay to one GOP.
///
/// # Errors
/// Propagates bitstream decode errors and engine reconstruction failures.
pub fn drive_session_checkpointed(
    model: &VrDann,
    session: usize,
    seq: &Sequence,
    encoded: &EncodedVideo,
    spec: &SessionSpec,
    sim: &SimConfig,
) -> Result<(DrivenSession, Vec<SessionCheckpoint>)> {
    let mut ckpts = Vec::new();
    let driven = drive_core(model, session, seq, encoded, spec, sim, &mut ckpts)?;
    Ok((driven, ckpts))
}

/// The live checkpointing walk: unlike the template path it must stamp the
/// decoder lane *while* the engine runs, because every anchor checkpoint
/// snapshots the lane clock alongside the engine state. Its stamping
/// arithmetic is the same op-for-op as
/// [`SessionTemplate::instantiate_prefix`], pinned byte-identical by
/// `checkpointed_drive_is_identical_and_snapshots_every_anchor`.
fn drive_core(
    model: &VrDann,
    session: usize,
    seq: &Sequence,
    encoded: &EncodedVideo,
    spec: &SessionSpec,
    sim: &SimConfig,
    checkpoints: &mut Vec<SessionCheckpoint>,
) -> Result<DrivenSession> {
    let mut source = StrictFrameSource::new(&encoded.bitstream)?;
    let info = source.info();
    let task = SegTask::new(
        seq,
        LargeNet::new(model.config().segment_profile),
        model.config().seed,
        &info,
    );
    let mut engine =
        PipelineEngine::new(model.config(), model.nns(), task, StrictPolicy::default());
    engine.prime(&info, &[]);

    let px = (info.width * info.height) as f64;
    let mut items: Vec<WorkItem> = Vec::with_capacity(info.n_frames);
    let mut t_decode = spec.start_offset_ns;
    let mut k = 0usize;
    while let Some(unit) = source.next_unit() {
        let unit = unit?;
        let arrival = spec.start_offset_ns + k as f64 * spec.frame_interval_ns;
        k += 1;
        let Some(work) = engine.step(unit)? else {
            continue;
        };
        let cpp = if work.full_decode {
            sim.decoder.cycles_per_pixel_full
        } else {
            sim.decoder.cycles_per_pixel_mv
        };
        let decode_ns = px * cpp / sim.decoder.freq_hz * 1e9;
        t_decode = t_decode.max(arrival) + decode_ns;
        items.push(WorkItem {
            session,
            idx: items.len(),
            display: work.display,
            ftype: work.ftype,
            ops: work.ops,
            uses_large_model: work.uses_large_model,
            arrival_ns: arrival,
            ready_ns: t_decode,
        });
        if work.uses_large_model {
            checkpoints.push(SessionCheckpoint {
                items_emitted: items.len(),
                units_consumed: k,
                decode_clock_ns: t_decode,
                engine: engine.checkpoint()?,
            });
        }
    }
    let totals = source.totals();
    let peak = source.peak_live_frames();
    let run = engine.finish(totals, peak)?;
    let isolated = simulate_stream(
        run.trace.frames.iter(),
        run.trace.scheme,
        run.trace.width,
        run.trace.height,
        run.trace.mb_size,
        ExecMode::VrDannParallel(ParallelOptions::default()),
        sim,
    );
    Ok(DrivenSession {
        name: seq.name.clone(),
        session,
        compute: model.config().compute,
        frames: run.outputs.len(),
        peak_live_frames: run.peak_live_frames,
        total_ops: run.trace.total_ops(),
        switches_in_order: run.trace.model_switches_in_order(),
        isolated_ns: isolated.total_ns,
        items,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_dann::{ComputeMode, TrainTask, VrDannConfig};
    use vrd_video::davis::{davis_sequence, davis_train_suite, SuiteConfig};

    fn tiny_model() -> (VrDann, SuiteConfig) {
        let cfg = SuiteConfig::tiny();
        let train = davis_train_suite(&cfg, 2);
        let vr_cfg = VrDannConfig {
            nns_hidden: 4,
            ..VrDannConfig::default()
        };
        (
            VrDann::train(&train, TrainTask::Segmentation, vr_cfg).unwrap(),
            cfg,
        )
    }

    #[test]
    fn driven_session_matches_standalone_run() {
        let (model, cfg) = tiny_model();
        let seq = davis_sequence("cows", &cfg).unwrap();
        let encoded = model.encode(&seq).unwrap();
        let spec = SessionSpec {
            start_offset_ns: 0.0,
            frame_interval_ns: 1e6,
        };
        let sim = SimConfig::default();
        let driven = drive_session(&model, 0, &seq, &encoded, &spec, &sim).unwrap();
        let solo = model.run_segmentation(&seq, &encoded).unwrap();
        assert_eq!(driven.frames, solo.masks.len());
        assert_eq!(driven.items.len(), solo.trace.frames.len());
        assert_eq!(driven.total_ops, solo.trace.total_ops());
        assert_eq!(
            driven.switches_in_order,
            solo.trace.model_switches_in_order()
        );
        assert_eq!(driven.peak_live_frames, solo.peak_live_frames);
        for (item, tf) in driven.items.iter().zip(&solo.trace.frames) {
            assert_eq!(item.display, tf.display);
            assert_eq!(item.ops, tf.kind.ops());
            assert_eq!(item.uses_large_model, tf.kind.uses_large_model());
        }
        assert!(driven.isolated_ns > 0.0);
    }

    #[test]
    fn int8_session_emits_identical_work() {
        // The NPU accounting is compute-mode-invariant: a session driven on
        // the quantized path puts byte-identical work on the scheduler, so
        // admission control and SLO accounting never depend on the mode.
        let (model, cfg) = tiny_model();
        let seq = davis_sequence("cows", &cfg).unwrap();
        let encoded = model.encode(&seq).unwrap();
        let spec = SessionSpec {
            start_offset_ns: 0.0,
            frame_interval_ns: 1e6,
        };
        let sim = SimConfig::default();
        let f32_run = drive_session(&model, 0, &seq, &encoded, &spec, &sim).unwrap();
        let int8_model = model.clone().with_compute(ComputeMode::Int8);
        let int8_run = drive_session(&int8_model, 0, &seq, &encoded, &spec, &sim).unwrap();
        assert_eq!(f32_run.items, int8_run.items);
        assert_eq!(f32_run.frames, int8_run.frames);
        assert_eq!(f32_run.total_ops, int8_run.total_ops);
        assert_eq!(f32_run.switches_in_order, int8_run.switches_in_order);
        assert_eq!(f32_run.isolated_ns, int8_run.isolated_ns);
        // The mode itself is carried for the chaos ladder and admission.
        assert_eq!(f32_run.compute, ComputeMode::F32Reference);
        assert_eq!(int8_run.compute, ComputeMode::Int8);
    }

    #[test]
    fn pipelined_drive_emits_identical_schedule() {
        // The scheduler accounting must be executor-invariant: a session
        // driven on the two-lane pipelined path puts byte-identical work
        // (ops, residency, decoder-lane stamps, switch counts) on the
        // shared NPU at every thread count.
        let (model, cfg) = tiny_model();
        let seq = davis_sequence("cows", &cfg).unwrap();
        let encoded = model.encode(&seq).unwrap();
        let sim = SimConfig::default();
        let tpl = drive_template(&model, &seq, &encoded, &sim).unwrap();
        for threads in [1, 2, 4] {
            let pipe = PipelineOptions {
                threads: Some(threads),
                channel_capacity: Some(4),
            };
            let piped = drive_template_pipelined(&model, &seq, &encoded, &sim, &pipe).unwrap();
            assert_eq!(
                piped, tpl,
                "scheduler accounting diverged at {threads} threads"
            );
        }
        let spec = SessionSpec {
            start_offset_ns: 250.0,
            frame_interval_ns: 1.5e6,
        };
        let live = drive_session(&model, 1, &seq, &encoded, &spec, &sim).unwrap();
        let piped = drive_session_pipelined(
            &model,
            1,
            &seq,
            &encoded,
            &spec,
            &sim,
            &PipelineOptions::default(),
        )
        .unwrap();
        assert_eq!(piped, live);
    }

    #[test]
    fn checkpointed_drive_is_identical_and_snapshots_every_anchor() {
        let (model, cfg) = tiny_model();
        let seq = davis_sequence("cows", &cfg).unwrap();
        let encoded = model.encode(&seq).unwrap();
        let spec = SessionSpec {
            start_offset_ns: 0.0,
            frame_interval_ns: 1e6,
        };
        let sim = SimConfig::default();
        let plain = drive_session(&model, 0, &seq, &encoded, &spec, &sim).unwrap();
        let (driven, ckpts) =
            drive_session_checkpointed(&model, 0, &seq, &encoded, &spec, &sim).unwrap();
        assert_eq!(driven, plain, "checkpointing must not perturb the drive");
        let anchors = plain.items.iter().filter(|i| i.uses_large_model).count();
        assert_eq!(ckpts.len(), anchors);
        for w in ckpts.windows(2) {
            assert!(w[0].items_emitted < w[1].items_emitted);
            assert!(w[0].units_consumed < w[1].units_consumed);
            assert!(w[0].decode_clock_ns <= w[1].decode_clock_ns);
        }
        for c in &ckpts {
            assert_eq!(c.engine.frames_emitted(), c.items_emitted);
        }
    }

    #[test]
    fn crash_resume_from_checkpoint_reemits_identical_tail() {
        // Simulate an NPU crash mid-session: the host rolls the engine
        // back to the last anchor checkpoint and replays the decode walk
        // from there. The re-emitted tail must be byte-identical — work
        // kinds, ops AND decoder-lane stamps.
        let (model, cfg) = tiny_model();
        let seq = davis_sequence("dog", &cfg).unwrap();
        let encoded = model.encode(&seq).unwrap();
        let spec = SessionSpec {
            start_offset_ns: 250.0,
            frame_interval_ns: 1.5e6,
        };
        let sim = SimConfig::default();
        let (straight, ckpts) =
            drive_session_checkpointed(&model, 2, &seq, &encoded, &spec, &sim).unwrap();
        assert!(ckpts.len() >= 2, "need a mid-stream anchor to resume from");
        let ckpt = &ckpts[ckpts.len() / 2];
        assert!(ckpt.items_emitted < straight.items.len());

        // Re-drive up to the crash point on a live engine, then restore.
        let mut source = StrictFrameSource::new(&encoded.bitstream).unwrap();
        let info = source.info();
        let task = SegTask::new(
            &seq,
            LargeNet::new(model.config().segment_profile),
            model.config().seed,
            &info,
        );
        let mut engine =
            PipelineEngine::new(model.config(), model.nns(), task, StrictPolicy::default());
        engine.prime(&info, &[]);
        for _ in 0..ckpt.units_consumed + 2 {
            if let Some(unit) = source.next_unit() {
                engine.step(unit.unwrap()).unwrap();
            }
        }
        engine.restore(&ckpt.engine).unwrap();

        // Recovery walk: fresh source, skip the consumed units, resume the
        // decoder-lane clock from the snapshot.
        let mut source = StrictFrameSource::new(&encoded.bitstream).unwrap();
        for _ in 0..ckpt.units_consumed {
            source.next_unit().unwrap().unwrap();
        }
        let px = (info.width * info.height) as f64;
        let mut t_decode = ckpt.decode_clock_ns;
        let mut k = ckpt.units_consumed;
        let mut tail: Vec<WorkItem> = Vec::new();
        while let Some(unit) = source.next_unit() {
            let arrival = spec.start_offset_ns + k as f64 * spec.frame_interval_ns;
            k += 1;
            let Some(work) = engine.step(unit.unwrap()).unwrap() else {
                continue;
            };
            let cpp = if work.full_decode {
                sim.decoder.cycles_per_pixel_full
            } else {
                sim.decoder.cycles_per_pixel_mv
            };
            t_decode = t_decode.max(arrival) + px * cpp / sim.decoder.freq_hz * 1e9;
            tail.push(WorkItem {
                session: 2,
                idx: ckpt.items_emitted + tail.len(),
                display: work.display,
                ftype: work.ftype,
                ops: work.ops,
                uses_large_model: work.uses_large_model,
                arrival_ns: arrival,
                ready_ns: t_decode,
            });
        }
        assert_eq!(tail, straight.items[ckpt.items_emitted..]);
        let run = engine
            .finish(source.totals(), source.peak_live_frames())
            .unwrap();
        assert_eq!(run.outputs.len(), straight.frames);
    }

    #[test]
    fn template_instantiation_matches_live_drive() {
        // One template, many pacings: every instantiation must be
        // byte-identical to the (checkpointed) live drive under the same
        // spec — including the f64 decoder-lane stamps.
        let (model, cfg) = tiny_model();
        let seq = davis_sequence("cows", &cfg).unwrap();
        let encoded = model.encode(&seq).unwrap();
        let sim = SimConfig::default();
        let tpl = drive_template(&model, &seq, &encoded, &sim).unwrap();
        for (session, (offset, interval)) in [(0.0, 1e6), (250.0, 1.5e6), (7.3e6, 0.4e6)]
            .iter()
            .enumerate()
        {
            let spec = SessionSpec {
                start_offset_ns: *offset,
                frame_interval_ns: *interval,
            };
            let (live, _) =
                drive_session_checkpointed(&model, session, &seq, &encoded, &spec, &sim).unwrap();
            assert_eq!(tpl.instantiate(session, &spec), live);
        }
    }

    #[test]
    fn template_prefix_truncates_for_churn() {
        let (model, cfg) = tiny_model();
        let seq = davis_sequence("dog", &cfg).unwrap();
        let encoded = model.encode(&seq).unwrap();
        let sim = SimConfig::default();
        let tpl = drive_template(&model, &seq, &encoded, &sim).unwrap();
        let spec = SessionSpec {
            start_offset_ns: 100.0,
            frame_interval_ns: 2e6,
        };
        let full = tpl.instantiate(5, &spec);
        let cut = tpl.instantiate_prefix(5, &spec, 4);
        assert_eq!(cut.items.len(), 4);
        assert_eq!(cut.items[..], full.items[..4]);
        assert_eq!(cut.frames, 4);
        assert!(cut.total_ops < full.total_ops);
        assert!(cut.isolated_ns < full.isolated_ns);
        // A zero-length prefix is an empty (churned-out) session.
        let gone = tpl.instantiate_prefix(5, &spec, 0);
        assert!(gone.items.is_empty());
        assert_eq!(gone.total_ops, 0);
        assert_eq!(gone.switches_in_order, 0);
        // Over-asking clamps to the full stream.
        assert_eq!(tpl.instantiate_prefix(5, &spec, usize::MAX), full);
    }

    #[test]
    fn decode_lane_is_sequential_and_paced() {
        let (model, cfg) = tiny_model();
        let seq = davis_sequence("dog", &cfg).unwrap();
        let encoded = model.encode(&seq).unwrap();
        let interval = 2e6;
        let spec = SessionSpec {
            start_offset_ns: 500.0,
            frame_interval_ns: interval,
        };
        let sim = SimConfig::default();
        let driven = drive_session(&model, 3, &seq, &encoded, &spec, &sim).unwrap();
        for (k, item) in driven.items.iter().enumerate() {
            assert_eq!(item.session, 3);
            assert_eq!(item.idx, k);
            // The decoder cannot hand a frame over before it arrived.
            assert!(item.ready_ns > item.arrival_ns);
            // Arrivals are paced by the configured interval.
            assert!((item.arrival_ns - (500.0 + k as f64 * interval)).abs() < 1e-6);
            // Hand-over order is decode order.
            if k > 0 {
                assert!(item.ready_ns >= driven.items[k - 1].ready_ns);
            }
        }
    }
}
