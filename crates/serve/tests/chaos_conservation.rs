//! Property: the chaos scheduler conserves frames.
//!
//! Over random synthetic session mixes, random fault profiles (work-item
//! failures, stalls, crash windows), both policies and every recovery
//! posture, each admitted frame is accounted for **exactly once** —
//! delivered full, delivered degraded, shed, or lost to a crash kill —
//! the event loop always terminates (a livelock trips the scheduler's
//! iteration bound and surfaces as an error, failing the property), and a
//! bitwise repeat of the replay is identical.

use proptest::prelude::*;
use vr_dann::ComputeMode;
use vrd_codec::FrameType;
use vrd_serve::{
    schedule_chaos, ChaosConfig, ChaosOutcome, DrivenSession, LadderConfig, NpuFaultProfile,
    RecoveryConfig, SchedConfig, SchedPolicy, WorkItem,
};
use vrd_sim::SimConfig;

/// splitmix64 — deterministic parameter scrambling per session index.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A synthetic driven session: anchors every `b_per + 1` frames, pacing
/// and phase scrambled from the seed.
fn synth(seed: u64, session: usize, groups: usize, b_per: usize, int8: bool) -> DrivenSession {
    let h = mix(seed ^ (session as u64).wrapping_mul(0x517c_c1b7_2722_0a95));
    let interval = 2e5 + (h % 1_000_000) as f64 * 4.0; // 0.2 .. 4.2 ms
    let offset = (mix(h) % 3_000_000) as f64;
    let mut items = Vec::new();
    for k in 0..groups * (b_per + 1) {
        let anchor = k.is_multiple_of(b_per + 1);
        let arrival = offset + k as f64 * interval;
        items.push(WorkItem {
            session,
            idx: k,
            display: k as u32,
            ftype: if anchor { FrameType::I } else { FrameType::B },
            ops: if anchor { 4_000_000_000 } else { 1_000_000 },
            uses_large_model: anchor,
            arrival_ns: arrival,
            ready_ns: arrival + 1_000.0,
        });
    }
    DrivenSession {
        name: format!("prop-{session}"),
        session,
        compute: if int8 {
            ComputeMode::Int8
        } else {
            ComputeMode::F32Reference
        },
        frames: items.len(),
        peak_live_frames: 2,
        total_ops: items.iter().map(|i| i.ops).sum(),
        switches_in_order: 2 * groups,
        isolated_ns: 0.0,
        items,
    }
}

/// Exactly-once accounting, globally and per session; delivered frames
/// each carry exactly one latency sample (no duplicate emission).
fn assert_conserved(out: &ChaosOutcome, sessions: &[DrivenSession]) {
    assert_eq!(
        out.frames_full + out.frames_degraded + out.frames_shed + out.frames_lost,
        out.frames_offered,
        "global conservation broke"
    );
    assert_eq!(
        out.frames_offered,
        sessions.iter().map(|s| s.items.len()).sum::<usize>()
    );
    assert_eq!(out.per_session.len(), sessions.len());
    for (p, s) in out.per_session.iter().zip(sessions) {
        assert_eq!(
            p.frames_full + p.frames_degraded + p.frames_shed + p.frames_lost,
            s.items.len(),
            "session {} conservation broke",
            p.session
        );
        // One latency sample per delivered frame — a frame emitted twice
        // (e.g. retried after already being delivered) would show up here.
        assert_eq!(p.latency.count, p.frames_full + p.frames_degraded);
        // Ladder bookkeeping agrees with delivery counts.
        let at_levels: usize = p.degradation.frames_at_level.iter().sum();
        assert_eq!(at_levels, p.frames_full + p.frames_degraded);
        // Lost frames require a crash kill, and vice versa.
        assert_eq!(p.frames_lost > 0, p.lost, "session {}", p.session);
    }
    assert_eq!(out.latency.count, out.frames_full + out.frames_degraded);
    assert_eq!(
        out.sessions_lost,
        out.per_session.iter().filter(|p| p.lost).count()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn every_admitted_frame_is_accounted_exactly_once(
        seed in 0u64..u64::MAX,
        n_sessions in 1usize..5,
        groups in 1usize..5,
        b_per in 0usize..6,
        fail_rate in 0.0f64..0.6,
        stall_rate in 0.0f64..0.3,
        crash in (0u8..2).prop_map(|v| v == 1),
        crash_at_us in 1u64..40_000,
        crash_down_us in 1u64..5_000,
        max_attempts in 1u32..5,
        checkpoint_restore in (0u8..2).prop_map(|v| v == 1),
        with_ladder in (0u8..2).prop_map(|v| v == 1),
        with_deadline in (0u8..2).prop_map(|v| v == 1),
        fifo in (0u8..2).prop_map(|v| v == 1),
    ) {
        let sessions: Vec<DrivenSession> = (0..n_sessions)
            .map(|s| synth(seed, s, groups, b_per, mix(seed ^ s as u64).is_multiple_of(3)))
            .collect();
        let cfg = SchedConfig {
            shed_after_ns: with_deadline.then_some(4e6),
            ..SchedConfig::default()
        };
        let faults = NpuFaultProfile {
            seed: mix(seed),
            work_item_fail_rate: fail_rate,
            stall_rate,
            stall_ns: 150_000.0,
            crashes: if crash {
                NpuFaultProfile::single_crash(crash_at_us as f64 * 1e3, crash_down_us as f64 * 1e3)
                    .crashes
            } else {
                Vec::new()
            },
        };
        let chaos = ChaosConfig {
            faults,
            recovery: RecoveryConfig {
                max_attempts,
                checkpoint_restore,
                ladder: with_ladder.then(LadderConfig::default),
                ..RecoveryConfig::default()
            },
        };
        let policy = if fifo { SchedPolicy::Fifo } else { SchedPolicy::Batch };
        let sim = SimConfig::default();

        // Termination is part of the property: a deadlock trips the
        // scheduler's iteration bound and comes back as Err.
        let out = schedule_chaos(&sessions, policy, &cfg, &sim, &chaos);
        prop_assert!(out.is_ok(), "scheduler error: {:?}", out.err());
        let out = out.unwrap();
        assert_conserved(&out, &sessions);

        // Without a crash (or with restore on), nothing may be lost.
        if !crash || checkpoint_restore {
            prop_assert_eq!(out.frames_lost, 0);
            prop_assert_eq!(out.sessions_lost, 0);
        }
        // With a ladder every deadline miss and exhausted retry budget is
        // converted into a copy-forward delivery, so nothing is ever shed.
        if with_ladder && cfg.shed_after_ns.is_some() {
            prop_assert_eq!(out.frames_shed, 0);
        }

        // Bitwise determinism of the whole outcome.
        let again = schedule_chaos(&sessions, policy, &cfg, &sim, &chaos).unwrap();
        prop_assert_eq!(out, again);
    }
}
