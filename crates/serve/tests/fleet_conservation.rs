//! Property: the fleet conserves offered sessions and frames.
//!
//! Over random traffic traces (seeded envelopes, heterogeneous shapes,
//! churn) crossed with random shard counts, autoscale/rebalance postures
//! and stream libraries, every offered session gets **exactly one** fate —
//! admitted to exactly one shard, rejected, or churned-out — fleet totals
//! equal the sum of shard totals, and the whole report is bitwise
//! deterministic across repeat runs and worker-thread counts (the
//! `VRD_THREADS` axis is exercised through the explicit `threads` knob the
//! env var feeds in production).

use proptest::prelude::*;
use vr_dann::ComputeMode;
use vrd_codec::FrameType;
use vrd_serve::{
    run_fleet, AutoscaleConfig, Envelope, FleetConfig, FleetReport, LoadGenConfig, OfferFate,
    RebalanceConfig, SessionDemand, SessionTemplate, StreamEntry, TemplateItem,
};
use vrd_sim::SimConfig;

/// splitmix64 — deterministic parameter scrambling per stream index.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A synthetic stream library entry: anchor/B mix scrambled from the seed
/// so different streams carry genuinely different model-affinity fractions.
fn synth_entry(seed: u64, stream: usize, sim: &SimConfig) -> StreamEntry {
    let h = mix(seed ^ (stream as u64).wrapping_mul(0x517c_c1b7_2722_0a95));
    let anchors = 1 + (h % 6) as usize;
    let b_per = (mix(h) % 8) as usize;
    let nnl_ops = 500_000 + h % 4_000_000;
    let nns_ops = 10_000 + mix(h ^ 1) % 100_000;
    let mut items = Vec::new();
    for a in 0..anchors {
        items.push(TemplateItem {
            display: (a * (b_per + 1)) as u32,
            ftype: FrameType::I,
            ops: nnl_ops,
            uses_large_model: true,
            arrive_idx: items.len(),
            decode_ns: 800.0,
        });
        for b in 0..b_per {
            items.push(TemplateItem {
                display: (a * (b_per + 1) + b + 1) as u32,
                ftype: FrameType::B,
                ops: nns_ops,
                uses_large_model: false,
                arrive_idx: items.len(),
                decode_ns: 300.0,
            });
        }
    }
    let frames = items.len();
    let total_ops: u64 = items.iter().map(|i| i.ops).sum();
    let switches = items
        .windows(2)
        .filter(|w| w[0].uses_large_model != w[1].uses_large_model)
        .count();
    let ops_per_ns = sim.npu_ops_per_ns();
    StreamEntry {
        demand: SessionDemand {
            nnl_ns: nnl_ops as f64 / ops_per_ns,
            nns_ns: nns_ops as f64 / ops_per_ns,
            compute: ComputeMode::F32Reference,
            anchors,
            b_frames: anchors * b_per,
            frame_interval_ns: 1e6,
        },
        template: SessionTemplate {
            name: format!("prop-{stream}"),
            compute: ComputeMode::F32Reference,
            items,
            frames,
            peak_live_frames: 2,
            total_ops,
            switches_in_order: switches,
            isolated_ns: total_ops as f64 / ops_per_ns,
        },
    }
}

/// Exactly-once fates and fleet-equals-sum-of-shards accounting.
fn assert_conserved(report: &FleetReport) {
    assert_eq!(report.fates.len(), report.offered);
    let admitted = report
        .fates
        .iter()
        .filter(|f| matches!(f, OfferFate::Admitted { .. }))
        .count();
    let rejected = report
        .fates
        .iter()
        .filter(|f| matches!(f, OfferFate::Rejected { .. }))
        .count();
    let churned = report
        .fates
        .iter()
        .filter(|f| matches!(f, OfferFate::ChurnedOut))
        .count();
    assert_eq!(admitted, report.admitted);
    assert_eq!(rejected, report.rejected);
    assert_eq!(churned, report.churned_out);
    assert_eq!(
        report.admitted + report.rejected + report.churned_out,
        report.offered,
        "an offer gained or lost a fate"
    );
    // Each admitted offer resides on exactly one real shard, and shard
    // session counts sum to the admitted total.
    let mut per_shard = vec![0usize; report.shards.len()];
    for fate in &report.fates {
        if let OfferFate::Admitted { shard } = fate {
            assert!(*shard < report.shards.len(), "fate points past the fleet");
            per_shard[*shard] += 1;
        }
    }
    for (counted, shard) in per_shard.iter().zip(&report.shards) {
        assert_eq!(*counted, shard.sessions, "shard residency double-count");
    }
    assert_eq!(per_shard.iter().sum::<usize>(), report.admitted);
    // Fleet frame/switch/time totals are exactly the shard sums.
    let served: usize = report.shards.iter().map(|s| s.outcome.frames_served).sum();
    let shed: usize = report.shards.iter().map(|s| s.outcome.frames_shed).sum();
    let switches: usize = report.shards.iter().map(|s| s.outcome.switches).sum();
    let busy: f64 = report.shards.iter().map(|s| s.outcome.busy_ns).sum();
    assert_eq!(served, report.frames_served);
    assert_eq!(shed, report.frames_shed);
    assert_eq!(switches, report.switches);
    assert!((busy - report.busy_ns).abs() < 1e-6);
    assert_eq!(report.latency.count, report.frames_served);
    let max_span = report
        .shards
        .iter()
        .map(|s| s.outcome.makespan_ns)
        .fold(0.0f64, f64::max);
    assert_eq!(max_span, report.makespan_ns);
    // Migrations are conserved between fleet and shard bookkeeping.
    let migr_in: usize = report.shards.iter().map(|s| s.migrations_in).sum();
    assert_eq!(migr_in, report.migrations);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_offered_session_has_exactly_one_fate(
        seed in 0u64..u64::MAX,
        sessions in 1usize..48,
        streams in 1usize..4,
        shards in 1usize..5,
        headroom in 0usize..4,
        churn in 0.0f64..0.9,
        mean_gap_us in 50u64..2_000,
        envelope_pick in 0u8..4,
        heterogeneous in (0u8..2).prop_map(|v| v == 1),
        with_autoscale in (0u8..2).prop_map(|v| v == 1),
        with_rebalance in (0u8..2).prop_map(|v| v == 1),
    ) {
        let sim = SimConfig::default();
        let library: Vec<StreamEntry> = (0..streams)
            .map(|s| synth_entry(seed, s, &sim))
            .collect();
        let envelope = match envelope_pick {
            0 => Envelope::Flat,
            1 => Envelope::Bursty { period_frac: 0.25, duty: 0.4, quiet_level: 0.1 },
            2 => Envelope::Diurnal { trough_level: 0.2 },
            _ => Envelope::Spike { factor: 4.0, start_frac: 0.3, end_frac: 0.6 },
        };
        let trace = vrd_serve::generate(&LoadGenConfig {
            seed: mix(seed),
            sessions,
            streams,
            stream_frames: 12,
            base_interval_ns: 1e6,
            mean_interarrival_ns: mean_gap_us as f64 * 1e3,
            horizon_ns: 5e7,
            envelope,
            churn_rate: churn,
            heterogeneous,
        });
        let cfg = FleetConfig {
            min_shards: shards,
            max_shards: shards + headroom,
            sim,
            autoscale: with_autoscale.then(AutoscaleConfig::default),
            rebalance: with_rebalance.then(RebalanceConfig::default),
            threads: Some(3),
            ..FleetConfig::default()
        };

        let report = run_fleet(&trace, &library, &cfg);
        prop_assert!(report.is_ok(), "fleet error: {:?}", report.err());
        let report = report.unwrap();
        prop_assert_eq!(report.offered, sessions);
        assert_conserved(&report);

        // Bitwise determinism: an identical rerun and a different worker
        // count both reproduce the report exactly.
        let again = run_fleet(&trace, &library, &cfg).unwrap();
        prop_assert_eq!(&report, &again);
        let serial = run_fleet(
            &trace,
            &library,
            &FleetConfig { threads: Some(1), ..cfg },
        )
        .unwrap();
        prop_assert_eq!(&report, &serial);
    }
}
