//! End-to-end serving-layer tests: real model, real DAVIS-like streams,
//! the full admit → drive → schedule → report path.

use vr_dann::{PipelineOptions, TrainTask, VrDann, VrDannConfig};
use vrd_codec::EncodedVideo;
use vrd_serve::{serve, SchedPolicy, ServeConfig, SessionState, SloConfig};
use vrd_video::davis::{davis_train_suite, davis_val_suite, SuiteConfig};
use vrd_video::Sequence;

fn tiny_setup() -> (VrDann, Vec<Sequence>, Vec<EncodedVideo>) {
    let cfg = SuiteConfig::tiny();
    let train = davis_train_suite(&cfg, 2);
    let model = VrDann::train(
        &train,
        TrainTask::Segmentation,
        VrDannConfig {
            nns_hidden: 4,
            ..VrDannConfig::default()
        },
    )
    .unwrap();
    let seqs = davis_val_suite(&cfg);
    let encoded: Vec<EncodedVideo> = seqs.iter().map(|s| model.encode(s).unwrap()).collect();
    (model, seqs, encoded)
}

#[test]
fn serving_window_end_to_end() {
    let (model, seqs, encoded) = tiny_setup();
    let requests: Vec<_> = seqs.iter().zip(encoded.iter()).collect();
    let cfg = ServeConfig::default();
    let report = serve(&model, &requests, &cfg).unwrap();

    assert_eq!(report.sessions.len(), requests.len());
    assert_eq!(report.admitted + report.rejected, requests.len());
    assert!(
        report.admitted >= 4,
        "expected at least 4 admitted sessions, got {}",
        report.admitted
    );

    // Drained sessions recognised every frame; rejected ones ran nothing.
    let mut expected_frames = 0usize;
    for (r, (seq, _)) in requests.iter().enumerate() {
        let s = &report.sessions[r];
        match s.state {
            SessionState::Drained => {
                assert_eq!(s.frames, seq.len(), "session {} incomplete", s.name);
                assert!(s.reject.is_none() && s.projection.is_some());
                assert!(s.peak_live_frames > 0 && s.peak_live_frames < seq.len());
                assert!(s.isolated_ns > 0.0);
                expected_frames += s.frames;
            }
            SessionState::Rejected => {
                assert_eq!(s.frames, 0);
                assert!(s.reject.is_some() && s.projection.is_none());
            }
        }
    }
    for out in [&report.fifo, &report.batched] {
        assert_eq!(out.frames_served, expected_frames);
        assert_eq!(out.frames_shed, 0);
        assert_eq!(out.per_session.len(), report.admitted);
        assert!(out.latency.p99_ns >= out.latency.p50_ns);
        assert!(out.utilization() > 0.0 && out.utilization() <= 1.0);
    }
    assert_eq!(report.fifo.policy, SchedPolicy::Fifo);
    assert_eq!(report.batched.policy, SchedPolicy::Batch);

    // The tentpole claim: with ≥4 concurrent sessions, cross-session
    // batching strictly beats per-stream FIFO on switches and p99.
    assert!(
        report.batched.switches < report.fifo.switches,
        "batching saved no switches: {} vs {}",
        report.batched.switches,
        report.fifo.switches
    );
    assert!(report.switches_saved() > 0);
    assert!(
        report.batched.latency.p99_ns < report.fifo.latency.p99_ns,
        "batching did not cut p99: {:.0} vs {:.0}",
        report.batched.latency.p99_ns,
        report.fifo.latency.p99_ns
    );
}

#[test]
fn serving_is_deterministic() {
    let (model, seqs, encoded) = tiny_setup();
    let requests: Vec<_> = seqs.iter().zip(encoded.iter()).collect();
    let cfg = ServeConfig::default();
    let a = serve(&model, &requests, &cfg).unwrap();
    let b = serve(&model, &requests, &cfg).unwrap();
    assert_eq!(a, b);

    // Thread count must not change the outcome, only wall time.
    let single = serve(
        &model,
        &requests,
        &ServeConfig {
            threads: Some(1),
            ..cfg
        },
    )
    .unwrap();
    assert_eq!(a, single);
}

#[test]
fn pipelined_serve_matches_sequential() {
    // Opting the drive phase into the two-lane pipelined executor changes
    // wall-clock time only: admission decisions, stamped work, scheduler
    // replays and every report field stay byte-identical.
    let (model, seqs, encoded) = tiny_setup();
    let requests: Vec<_> = seqs.iter().zip(encoded.iter()).collect();
    let sequential = serve(&model, &requests, &ServeConfig::default()).unwrap();
    for threads in [1, 4] {
        let cfg = ServeConfig {
            pipeline: Some(PipelineOptions {
                threads: Some(threads),
                channel_capacity: Some(4),
            }),
            ..ServeConfig::default()
        };
        let piped = serve(&model, &requests, &cfg).unwrap();
        assert_eq!(
            piped, sequential,
            "pipelined serve diverged at {threads} wave threads"
        );
    }
}

#[test]
fn single_session_has_no_batching_advantage() {
    let (model, seqs, encoded) = tiny_setup();
    let requests = vec![(&seqs[0], &encoded[0])];
    let report = serve(&model, &requests, &ServeConfig::default()).unwrap();
    assert_eq!(report.admitted, 1);
    // One stream leaves nothing to batch across sessions.
    assert_eq!(report.batched.switches, report.fifo.switches);
    assert_eq!(report.switches_saved(), 0);
}

#[test]
fn tight_slo_rejects_excess_sessions() {
    let (model, seqs, encoded) = tiny_setup();
    let requests: Vec<_> = seqs.iter().zip(encoded.iter()).collect();
    let cfg = ServeConfig {
        slo: SloConfig {
            target_p99_ns: 2.5e6,
            max_utilization: 0.9,
        },
        ..ServeConfig::default()
    };
    let report = serve(&model, &requests, &cfg).unwrap();
    assert!(report.rejected > 0, "tight SLO rejected nothing");
    assert!(report.admitted >= 1, "tight SLO admitted nothing");
    // Tightening the SLO can only shrink the admitted set.
    let loose = serve(&model, &requests, &ServeConfig::default()).unwrap();
    assert!(report.admitted <= loose.admitted);
    assert!(report.projected_utilization < cfg.slo.max_utilization);
}
