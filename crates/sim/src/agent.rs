//! The VR-DANN agent unit: motion-vector rescheduling, coalescing and
//! parallel reconstruction (§IV-C, Fig. 8).
//!
//! The unit streams a B-frame's `mv_T` entries, groups them by
//! `(reference frame, source row band)`, and issues one sequential DRAM
//! fetch per group — so all blocks whose sources share a band ride the same
//! bursts and the same open DRAM row. Returned data is demultiplexed into
//! the `tmp_B` buffers out of order. With coalescing disabled (the ablation)
//! every motion vector fetches its 8×8 reference block independently with
//! row-hostile addresses.

use crate::config::AgentConfig;
use crate::dram::Dram;
use std::collections::BTreeSet;
use vrd_codec::MvRecord;

/// Outcome of reconstructing one B-frame.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ReconOutcome {
    /// Completion time (ns, absolute simulation time).
    pub finish_ns: f64,
    /// Segmentation bytes fetched from DRAM.
    pub seg_bytes: u64,
    /// `tmp_B` accesses performed (writes during reconstruction plus the
    /// drain readout).
    pub tmp_b_accesses: u64,
    /// Agent-side processing time (ns, excludes DRAM).
    pub agent_ns: f64,
}

/// Synthetic DRAM base address of an anchor's segmentation plane.
///
/// Planes are 1 bit/pixel; each frame gets its own region so different
/// references never share rows.
fn seg_base(frame: u32, width: usize, height: usize) -> u64 {
    // Region size rounded up to a row multiple.
    let plane = ((width * height / 8) as u64 + 8191) & !8191;
    0x4000_0000 + frame as u64 * plane
}

/// Models the reconstruction of one B-frame by the agent unit.
///
/// `start_ns` is when the motion vectors and reference segmentations are
/// available; the returned outcome gives the completion time against the
/// shared `dram` model.
#[allow(clippy::too_many_arguments)] // the agent's full operand set: mvs, geometry, policy, models, time
pub fn reconstruct(
    mvs: &[MvRecord],
    width: usize,
    height: usize,
    mb_size: usize,
    coalesce: bool,
    cfg: &AgentConfig,
    dram: &mut Dram,
    start_ns: f64,
) -> ReconOutcome {
    let row_bytes = (width / 8).max(1) as u64;
    let band_bytes = row_bytes * mb_size as u64;
    let cycle_ns = 1e9 / cfg.freq_hz;

    // Every reference a block needs (bi-ref entries contribute two).
    let refs: Vec<(u32, i32)> = mvs
        .iter()
        .flat_map(|mv| {
            let mut v = vec![(mv.ref0.frame, mv.ref0.src_y)];
            if let Some(r1) = mv.ref1 {
                v.push((r1.frame, r1.src_y));
            }
            v
        })
        .collect();

    let mut finish = start_ns;
    let mut seg_bytes = 0u64;
    let agent_ns;
    if coalesce {
        // The coalescer sees at most `mv_t_entries` records at a time: a
        // frame with more motion vectors is processed in windows, and a band
        // needed by two windows is fetched twice (the cost of the finite
        // table — invisible at small resolutions, measurable at HD).
        let mut total_scans = 0.0f64;
        for window in refs.chunks(cfg.mv_t_entries.max(1)) {
            // Group by (frame, band); unaligned sources span two bands.
            let mut bands: BTreeSet<(u32, u32)> = BTreeSet::new();
            for &(frame, src_y) in window {
                let first = src_y.max(0) as u32 / mb_size as u32;
                bands.insert((frame, first));
                if !(src_y.max(0) as usize).is_multiple_of(mb_size) {
                    bands.insert((frame, first + 1));
                }
            }
            for &(frame, band) in &bands {
                let addr = seg_base(frame, width, height) + band as u64 * band_bytes;
                finish = dram.request(addr, band_bytes as usize, finish);
                seg_bytes += band_bytes;
            }
            // Coalescer scans the mv_T window (32 entries/cycle) once per
            // band.
            total_scans +=
                bands.len() as f64 * (window.len() as f64 / cfg.coalesce_width as f64).ceil();
        }
        // Plus two dispatch cycles per reference block.
        agent_ns = (total_scans + 2.0 * refs.len() as f64) * cycle_ns;
    } else {
        // One scattered fetch per reference block: `mb_size` rows of a few
        // bytes each, every row its own burst at a row-hostile address.
        for &(frame, src_y) in &refs {
            let base = seg_base(frame, width, height);
            for r in 0..mb_size {
                let addr = base + (src_y.max(0) as u64 + r as u64) * row_bytes;
                finish = dram.request(addr, mb_size / 8 + 1, finish);
                seg_bytes += 64; // a full burst is transferred regardless
            }
        }
        agent_ns = 2.0 * refs.len() as f64 * cycle_ns;
    }

    // Demux writes into tmp_B, then the drain readout to DRAM.
    let tmp_b_accesses = 2 * refs.len() as u64 + mvs.len() as u64;
    let writeback_bytes = (width * height) / 4; // 2 bits/pixel
    finish = dram.request(
        0x8000_0000,
        writeback_bytes,
        finish.max(start_ns + agent_ns),
    );

    ReconOutcome {
        finish_ns: finish,
        seg_bytes: seg_bytes + writeback_bytes as u64,
        tmp_b_accesses,
        agent_ns,
    }
}

/// Hardware budget of the agent unit (Table II's cost summary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgentFootprint {
    /// Total `tmp_B` SRAM in bytes.
    pub tmp_b_bytes: usize,
    /// `mv_T` bytes (256 entries × 57 bits, rounded to bytes).
    pub mv_t_bytes: usize,
    /// `ip_Q` bytes (8 entries × 42 bits).
    pub ip_q_bytes: usize,
    /// `b_Q` bytes (24 entries × 42 bits).
    pub b_q_bytes: usize,
}

impl AgentFootprint {
    /// Computes the footprint from a configuration.
    pub fn from_config(cfg: &AgentConfig) -> Self {
        // mv_T entry: 1 bi-ref bit + 4+4 index bits + 4 × 12 address bits.
        let mv_entry_bits = 1 + 4 + 4 + 4 * 12;
        // Queue entries: 8-bit id + status + 32-bit address (§IV-D).
        let ip_entry_bits = 8 + 1 + 1 + 32;
        let b_entry_bits = 8 + 2 + 32;
        Self {
            tmp_b_bytes: cfg.tmp_b_buffers * cfg.tmp_b_bytes,
            mv_t_bytes: (cfg.mv_t_entries * mv_entry_bits).div_ceil(8),
            ip_q_bytes: (cfg.ip_q_entries * ip_entry_bits).div_ceil(8),
            b_q_bytes: (cfg.b_q_entries * b_entry_bits).div_ceil(8),
        }
    }

    /// Total SRAM excluding `tmp_B` (the "less than 2 KB" of §IV-D).
    pub fn control_bytes(&self) -> usize {
        self.mv_t_bytes + self.ip_q_bytes + self.b_q_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;
    use vrd_codec::RefMv;

    fn mv(dst: (u32, u32), frame: u32, src: (i32, i32), bi: bool) -> MvRecord {
        MvRecord {
            dst_x: dst.0,
            dst_y: dst.1,
            ref0: RefMv {
                frame,
                src_x: src.0,
                src_y: src.1,
            },
            ref1: bi.then_some(RefMv {
                frame: frame + 1,
                src_x: src.0,
                src_y: src.1,
            }),
        }
    }

    fn run(mvs: &[MvRecord], coalesce: bool) -> ReconOutcome {
        let mut dram = Dram::new(DramConfig::default());
        reconstruct(
            mvs,
            160,
            96,
            8,
            coalesce,
            &AgentConfig::default(),
            &mut dram,
            0.0,
        )
    }

    /// A full B-frame worth of motion vectors pointing at two anchors.
    fn full_frame_mvs() -> Vec<MvRecord> {
        let mut out = Vec::new();
        for by in (0..96).step_by(8) {
            for bx in (0..160).step_by(8) {
                out.push(mv(
                    (bx, by),
                    if bx % 16 == 0 { 0 } else { 4 },
                    (bx as i32 - 3, by as i32 + 2),
                    bx % 32 == 0,
                ));
            }
        }
        out
    }

    #[test]
    fn coalescing_cuts_time_and_traffic() {
        let mvs = full_frame_mvs();
        let fast = run(&mvs, true);
        let slow = run(&mvs, false);
        assert!(
            fast.finish_ns < slow.finish_ns / 2.0,
            "coalesced {} ns vs scattered {} ns",
            fast.finish_ns,
            slow.finish_ns
        );
        assert!(fast.seg_bytes < slow.seg_bytes);
    }

    #[test]
    fn reconstruction_is_fast_enough_to_hide() {
        // At 160x96 an NN-L inference takes ~2.8 ms on the modelled NPU;
        // a coalesced reconstruction must be far below that.
        let outcome = run(&full_frame_mvs(), true);
        assert!(
            outcome.finish_ns < 100_000.0,
            "reconstruction too slow to hide: {} ns",
            outcome.finish_ns
        );
    }

    #[test]
    fn small_mv_table_refetches_bands_across_windows() {
        // 480 motion vectors all sharing a handful of bands: a 256-entry
        // table needs two windows, re-fetching shared bands; a table large
        // enough for one window does not.
        let mvs: Vec<MvRecord> = (0..480)
            .map(|i| {
                mv(
                    ((i % 20) * 8, (i / 20) * 8 % 96),
                    0,
                    (64, (i % 6) as i32 * 8),
                    false,
                )
            })
            .collect();
        let run_with = |entries: usize| {
            let mut dram = Dram::new(DramConfig::default());
            let cfg = AgentConfig {
                mv_t_entries: entries,
                ..AgentConfig::default()
            };
            reconstruct(&mvs, 160, 96, 8, true, &cfg, &mut dram, 0.0)
        };
        let small = run_with(256);
        let large = run_with(1024);
        assert!(
            small.seg_bytes > large.seg_bytes,
            "windowing should refetch bands: {} vs {}",
            small.seg_bytes,
            large.seg_bytes
        );
        assert!(small.finish_ns >= large.finish_ns);
    }

    #[test]
    fn bi_ref_blocks_add_accesses() {
        let uni = run(&[mv((0, 0), 0, (0, 0), false)], true);
        let bi = run(&[mv((0, 0), 0, (0, 0), true)], true);
        assert!(bi.tmp_b_accesses > uni.tmp_b_accesses);
        assert!(bi.seg_bytes >= uni.seg_bytes);
    }

    #[test]
    fn footprint_matches_table_ii() {
        let fp = AgentFootprint::from_config(&AgentConfig::default());
        assert_eq!(fp.tmp_b_bytes, 3 * (100 << 10));
        // Table II: queues and table below 2 KB total.
        assert!(fp.control_bytes() < 2048, "{} B", fp.control_bytes());
        // b_Q is 126 B and ip_Q 42 B in the paper.
        assert_eq!(fp.b_q_bytes, 126);
        assert_eq!(fp.ip_q_bytes, 42);
    }
}
