//! Simulator configuration (the paper's Table II plus the cost constants
//! behind the energy and traffic models).
//!
//! Every constant is documented with its provenance. All can be overridden
//! for sensitivity studies; [`SimConfig::default`] reproduces the paper's
//! setup: Ascend-310-class NPU, 600 MHz agent unit, 300 MHz decoder, DDR3
//! global memory.

/// NPU behavioural timing model (Table II: Ascend 310).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NpuConfig {
    /// Peak INT8 throughput in ops/second (16 TOPS).
    pub peak_ops_per_s: f64,
    /// Achieved utilisation on convolutional workloads. 0.41 calibrates
    /// FAVOS to the paper's 13 fps at 854×480 (0.5 TOPS/frame).
    pub utilization: f64,
    /// On-chip buffer in bytes (8 MB) — the weight working set that must be
    /// refilled from DRAM on a model switch.
    pub buffer_bytes: usize,
    /// Fixed kernel-swap latency of a model switch, in nanoseconds.
    pub kernel_swap_ns: f64,
    /// Throughput multiplier of the quantized int8 NN-S path over the f32
    /// reference path. 4.0 matches the measured end-to-end NN-S speedup of
    /// the AVX2 `vpmaddwd` kernels (PR 6: 4.5× at 854×480, gated ≥3× in
    /// CI), rounded down to stay conservative. Consumers that model
    /// precision-aware service time (the serving layer's degradation
    /// ladder, compute-mode-aware admission) divide NN-S service time by
    /// this factor for `ComputeMode::Int8` streams.
    pub int8_speedup: f64,
}

impl Default for NpuConfig {
    fn default() -> Self {
        Self {
            peak_ops_per_s: 16e12,
            utilization: 0.41,
            buffer_bytes: 8 << 20,
            kernel_swap_ns: 100_000.0,
            int8_speedup: 4.0,
        }
    }
}

/// Video decoder timing model (300 MHz, §V-B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecoderConfig {
    /// Decoder clock in Hz.
    pub freq_hz: f64,
    /// Cycles per pixel for a fully reconstructed frame. 18.3 makes the
    /// decoder sustain ~40 fps at 854×480 — the rate the paper says
    /// VR-DANN-parallel matches.
    pub cycles_per_pixel_full: f64,
    /// Cycles per pixel for B-frame motion-vector extraction only (no pixel
    /// reconstruction, no residual decode).
    pub cycles_per_pixel_mv: f64,
    /// Energy per decoder cycle in picojoules.
    pub pj_per_cycle: f64,
}

impl Default for DecoderConfig {
    fn default() -> Self {
        Self {
            freq_hz: 300e6,
            cycles_per_pixel_full: 18.3,
            cycles_per_pixel_mv: 2.0,
            pj_per_cycle: 300.0,
        }
    }
}

/// The VR-DANN agent unit (Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgentConfig {
    /// Agent clock in Hz (600 MHz).
    pub freq_hz: f64,
    /// Number of `tmp_B` reconstruction buffers (3 in the paper).
    pub tmp_b_buffers: usize,
    /// Capacity of one `tmp_B` buffer in bytes (≈100 KB for 854×480 at
    /// 2 bits/pixel).
    pub tmp_b_bytes: usize,
    /// `mv_T` capacity in entries (256).
    pub mv_t_entries: usize,
    /// Motion vectors the coalescing unit examines per cycle (32).
    pub coalesce_width: usize,
    /// `ip_Q` capacity (8 entries).
    pub ip_q_entries: usize,
    /// `b_Q` capacity (24 entries).
    pub b_q_entries: usize,
    /// Energy of one `tmp_B` access in nanojoules (CACTI, 45 nm: the paper
    /// quotes 0.53 nJ for the 300 KB 32-bank array).
    pub tmp_b_nj_per_access: f64,
}

impl Default for AgentConfig {
    fn default() -> Self {
        Self {
            freq_hz: 600e6,
            tmp_b_buffers: 3,
            tmp_b_bytes: 100 << 10,
            mv_t_entries: 256,
            coalesce_width: 32,
            ip_q_entries: 8,
            b_q_entries: 24,
            tmp_b_nj_per_access: 0.53,
        }
    }
}

/// DDR3-like global memory timing (the DRAMSim stand-in).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Burst granularity in bytes (64 B = BL8 × 64-bit bus).
    pub burst_bytes: usize,
    /// Data-bus time of one burst in nanoseconds (DDR3-1600: 64 B at
    /// 12.8 GB/s = 5 ns).
    pub burst_ns: f64,
    /// Column access latency (CL) in nanoseconds.
    pub cl_ns: f64,
    /// Row-to-column delay (tRCD) in nanoseconds.
    pub rcd_ns: f64,
    /// Row precharge (tRP) in nanoseconds.
    pub rp_ns: f64,
    /// Number of banks.
    pub banks: usize,
    /// Row-buffer size in bytes.
    pub row_bytes: usize,
    /// Energy per byte transferred, in picojoules (DDR3 ballpark).
    pub pj_per_byte: f64,
}

impl Default for DramConfig {
    fn default() -> Self {
        Self {
            burst_bytes: 64,
            burst_ns: 5.0,
            cl_ns: 13.75,
            rcd_ns: 13.75,
            rp_ns: 13.75,
            banks: 8,
            row_bytes: 8 << 10,
            pj_per_byte: 60.0,
        }
    }
}

/// Per-event energy and software-fallback costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostConfig {
    /// NPU energy per operation in picojoules (Ascend-310 class: 16 TOPS at
    /// ~8 W ≈ 0.5 pJ/op).
    pub npu_pj_per_op: f64,
    /// CPU time per motion-vector record for the *software* reconstruction
    /// of VR-DANN-serial, in nanoseconds. Covers the scattered DRAM read,
    /// the bit manipulation and the write — the paper's "CPU is generally
    /// very inefficient for the large scale random memory accessing".
    pub cpu_ns_per_mv: f64,
    /// NN-L weight traffic per inference, in bytes per pixel of the frame
    /// (≈16 MB per 854×480 inference: the tiled weight working set streamed
    /// from DRAM).
    pub nnl_weight_bytes_per_pixel: f64,
    /// NN-L intermediate-activation spill traffic, in bytes per pixel
    /// (feature maps that do not fit the 8 MB buffer).
    pub nnl_activation_bytes_per_pixel: f64,
    /// NN-S weight bytes per inference (the whole network: ~1 K params).
    pub nns_weight_bytes: usize,
    /// Bytes of one motion-vector record in DRAM (mv_T entry: ~8 B packed).
    pub mv_record_bytes: usize,
    /// CPU energy per motion-vector record of the software reconstruction
    /// (VR-DANN-serial only), in nanojoules.
    pub cpu_nj_per_mv: f64,
    /// SoC static/idle power in milliwatts, charged over the whole
    /// execution window (slower schedules pay more idle energy — this is
    /// what separates VR-DANN-serial from -parallel in Fig. 13's energy).
    pub soc_static_mw: f64,
}

impl Default for CostConfig {
    fn default() -> Self {
        Self {
            npu_pj_per_op: 0.5,
            cpu_ns_per_mv: 2_500.0,
            nnl_weight_bytes_per_pixel: 39.0,
            nnl_activation_bytes_per_pixel: 60.0,
            nns_weight_bytes: 1_024,
            mv_record_bytes: 8,
            cpu_nj_per_mv: 3.0,
            soc_static_mw: 500.0,
        }
    }
}

/// Per-shard costs of a fleet of virtual NPUs. One shard is one virtual
/// device (NPU + agent unit + decoder lanes); the fleet layer provisions
/// and drains shards at runtime, and each shard is billed for its spin-up
/// and its static power over the window it is alive — so autoscaling is
/// never free on either the latency or the energy axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardConfig {
    /// Time to bring a new shard online: power/clock ramp, kernel images,
    /// and the first NN-L weight working set streamed from DRAM. Defaults
    /// to roughly twice one NN-L buffer refill (~1.3 ms) — provisioning a
    /// virtual device costs more than switching models on a live one.
    pub spinup_ns: f64,
    /// Static power of one live shard in milliwatts, charged over its
    /// whole active window (the per-shard share of
    /// [`CostConfig::soc_static_mw`]-style idle draw).
    pub static_mw: f64,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            spinup_ns: 1_400_000.0,
            static_mw: 500.0,
        }
    }
}

/// Complete simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimConfig {
    /// NPU model.
    pub npu: NpuConfig,
    /// Decoder model.
    pub decoder: DecoderConfig,
    /// Agent-unit model.
    pub agent: AgentConfig,
    /// Global memory model.
    pub dram: DramConfig,
    /// Energy/cost constants.
    pub cost: CostConfig,
    /// Per-shard fleet costs.
    pub shard: ShardConfig,
}

impl SimConfig {
    /// Effective NPU throughput in ops/ns.
    pub fn npu_ops_per_ns(&self) -> f64 {
        self.npu.peak_ops_per_s * self.npu.utilization / 1e9
    }

    /// DRAM peak bandwidth in bytes/ns.
    pub fn dram_bytes_per_ns(&self) -> f64 {
        self.dram.burst_bytes as f64 / self.dram.burst_ns
    }

    /// Time to switch the NPU onto the large model: refill the on-chip
    /// buffer from DRAM plus the kernel swap.
    pub fn switch_to_large_ns(&self) -> f64 {
        self.npu.buffer_bytes as f64 / self.dram_bytes_per_ns() + self.npu.kernel_swap_ns
    }

    /// Time to switch the NPU onto the small model (NN-S weights are tiny;
    /// the kernel swap dominates).
    pub fn switch_to_small_ns(&self) -> f64 {
        self.cost.nns_weight_bytes as f64 / self.dram_bytes_per_ns() + self.npu.kernel_swap_ns
    }

    /// Effective NPU throughput on int8-quantized NN-S work, in ops/ns
    /// (the f32 throughput scaled by [`NpuConfig::int8_speedup`]).
    pub fn npu_int8_ops_per_ns(&self) -> f64 {
        self.npu_ops_per_ns() * self.npu.int8_speedup
    }

    /// Time to bring one fleet shard online.
    pub fn shard_spinup_ns(&self) -> f64 {
        self.shard.spinup_ns
    }

    /// Energy one shard burnt, in joules: its compute (busy time at the
    /// NPU's service rate times per-op energy) plus its static draw over
    /// the window it was alive. `busy_ns` is NPU compute time, `active_ns`
    /// the shard's whole provisioned window (spin-up included).
    pub fn shard_energy_j(&self, busy_ns: f64, active_ns: f64) -> f64 {
        let ops = busy_ns * self.npu_ops_per_ns();
        let compute_j = ops * self.cost.npu_pj_per_op * 1e-12;
        let static_j = self.shard.static_mw * 1e-3 * active_ns * 1e-9;
        compute_j + static_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn favos_fps_at_paper_resolution_is_about_13() {
        let cfg = SimConfig::default();
        let nnl_ops = 0.5e12; // per the paper, per 854x480 frame
        let frame_ns = nnl_ops / cfg.npu_ops_per_ns();
        let fps = 1e9 / frame_ns;
        assert!(
            (12.0..14.5).contains(&fps),
            "FAVOS fps calibration off: {fps:.1}"
        );
    }

    #[test]
    fn decoder_sustains_about_40fps_at_paper_resolution() {
        let cfg = SimConfig::default().decoder;
        let cycles = 854.0 * 480.0 * cfg.cycles_per_pixel_full;
        let fps = cfg.freq_hz / cycles;
        assert!((38.0..42.0).contains(&fps), "decoder fps: {fps:.1}");
    }

    #[test]
    fn switch_costs_are_asymmetric() {
        let cfg = SimConfig::default();
        assert!(cfg.switch_to_large_ns() > 5.0 * cfg.switch_to_small_ns());
        // Large switch is dominated by the 8 MB buffer refill (~655 us).
        assert!((600_000.0..900_000.0).contains(&cfg.switch_to_large_ns()));
    }

    #[test]
    fn shard_costs_are_billed() {
        let cfg = SimConfig::default();
        // Provisioning a virtual device costs more than a model switch on
        // a live one — otherwise autoscaling would be a free lunch.
        assert!(cfg.shard_spinup_ns() > cfg.switch_to_large_ns());
        // 1 ms busy inside a 10 ms window: compute energy plus static draw.
        let e = cfg.shard_energy_j(1e6, 1e7);
        let compute = 1e6 * cfg.npu_ops_per_ns() * cfg.cost.npu_pj_per_op * 1e-12;
        let static_j = 0.5 * 1e7 * 1e-9;
        assert!((e - (compute + static_j)).abs() < 1e-12, "energy {e}");
        // An idle shard still burns static power.
        assert!(cfg.shard_energy_j(0.0, 1e7) > 0.0);
        assert_eq!(cfg.shard_energy_j(0.0, 0.0), 0.0);
    }

    #[test]
    fn dram_bandwidth_matches_ddr3_1600() {
        let cfg = SimConfig::default();
        let gbps = cfg.dram_bytes_per_ns();
        assert!((12.0..13.5).contains(&gbps), "bandwidth {gbps:.1} GB/s");
    }
}
