//! Event-driven DDR3-like memory model (the DRAMSim stand-in).
//!
//! Requests are split into 64-byte bursts and serviced in order against
//! per-bank state: an open-row hit pays CL + burst, a miss on an idle bank
//! pays tRCD + CL + burst, and a conflict with another open row adds tRP.
//! This is exactly the level of detail the motion-vector coalescing study
//! needs — sequential (coalesced) bursts ride the open row while scattered
//! block fetches thrash it.

use crate::config::DramConfig;

/// Cumulative access statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DramStats {
    /// Bursts that hit an open row.
    pub row_hits: u64,
    /// Bursts that opened a row on an idle bank.
    pub row_misses: u64,
    /// Bursts that had to close another row first.
    pub row_conflicts: u64,
    /// Total bytes transferred.
    pub bytes: u64,
}

impl DramStats {
    /// Row-buffer hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

/// The memory model.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    /// Open row per bank (`None` = precharged).
    open_rows: Vec<Option<u64>>,
    /// Time each bank becomes free, in nanoseconds.
    bank_free_ns: Vec<f64>,
    /// Time the shared data bus becomes free.
    bus_free_ns: f64,
    stats: DramStats,
}

impl Dram {
    /// Creates a memory model.
    pub fn new(cfg: DramConfig) -> Self {
        Self {
            cfg,
            open_rows: vec![None; cfg.banks],
            bank_free_ns: vec![0.0; cfg.banks],
            bus_free_ns: 0.0,
            stats: DramStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    fn bank_and_row(&self, addr: u64) -> (usize, u64) {
        let row = addr / self.cfg.row_bytes as u64;
        ((row % self.cfg.banks as u64) as usize, row)
    }

    /// Issues a request of `bytes` starting at `addr`, arriving at
    /// `arrival_ns`. Returns the completion time in nanoseconds.
    ///
    /// Bursts of one request pipeline on the data bus: the column-access
    /// latency (CL) is paid once as completion latency, not per burst, so
    /// sequential streams approach the peak bus bandwidth like real DDR.
    pub fn request(&mut self, addr: u64, bytes: usize, arrival_ns: f64) -> f64 {
        let mut data_end = arrival_ns;
        let mut cursor = addr;
        let mut remaining = bytes.max(1);
        while remaining > 0 {
            let chunk = self.cfg.burst_bytes.min(remaining);
            data_end = self.burst(cursor, arrival_ns);
            cursor += self.cfg.burst_bytes as u64;
            remaining -= chunk;
        }
        data_end + self.cfg.cl_ns
    }

    fn burst(&mut self, addr: u64, ready_ns: f64) -> f64 {
        let (bank, row) = self.bank_and_row(addr);
        let start = ready_ns.max(self.bank_free_ns[bank]);
        // Row activation cost (precharge + activate); hits pay nothing
        // beyond the pipelined CAS accounted at request completion.
        let activate_ns = match self.open_rows[bank] {
            Some(open) if open == row => {
                self.stats.row_hits += 1;
                0.0
            }
            Some(_) => {
                self.stats.row_conflicts += 1;
                self.cfg.rp_ns + self.cfg.rcd_ns
            }
            None => {
                self.stats.row_misses += 1;
                self.cfg.rcd_ns
            }
        };
        self.open_rows[bank] = Some(row);
        // Data transfer occupies the shared bus once the bank is ready.
        let data_start = (start + activate_ns).max(self.bus_free_ns);
        let data_end = data_start + self.cfg.burst_ns;
        self.bank_free_ns[bank] = data_end;
        self.bus_free_ns = data_end;
        self.stats.bytes += self.cfg.burst_bytes as u64;
        data_end
    }

    /// Resets timing and row state (statistics are kept).
    pub fn quiesce(&mut self) {
        self.open_rows.fill(None);
        self.bank_free_ns.fill(0.0);
        self.bus_free_ns = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::default())
    }

    #[test]
    fn sequential_access_hits_the_row_buffer() {
        let mut d = dram();
        let mut t = 0.0;
        for i in 0..64u64 {
            t = d.request(i * 64, 64, t);
        }
        let s = *d.stats();
        assert!(s.hit_rate() > 0.9, "hit rate {:.2}", s.hit_rate());
        assert_eq!(s.bytes, 64 * 64);
    }

    #[test]
    fn scattered_access_conflicts() {
        let mut d = dram();
        let mut t = 0.0;
        // Stride of several rows within the same bank group.
        for i in 0..64u64 {
            t = d.request(i * 8 * 8192, 64, t);
        }
        assert!(d.stats().hit_rate() < 0.1);
    }

    #[test]
    fn coalesced_is_faster_than_scattered() {
        let mut seq = dram();
        let mut t_seq = 0.0;
        for i in 0..256u64 {
            t_seq = seq.request(i * 64, 64, t_seq);
        }
        let mut rnd = dram();
        let mut t_rnd = 0.0;
        for i in 0..256u64 {
            // Pseudo-random row-hostile pattern.
            let addr = (i * 7919) % 4096 * 8192 * 8;
            t_rnd = rnd.request(addr, 64, t_rnd);
        }
        assert!(
            t_rnd > 1.5 * t_seq,
            "scattered {t_rnd:.0} ns should be much slower than sequential {t_seq:.0} ns"
        );
    }

    #[test]
    fn large_request_splits_into_bursts() {
        let mut d = dram();
        let finish = d.request(0, 1024, 0.0);
        assert_eq!(d.stats().bytes, 1024);
        // 16 bursts at 5 ns of bus time each, plus one activation.
        assert!(finish >= 16.0 * 5.0);
    }

    #[test]
    fn sustained_sequential_bandwidth_approaches_peak() {
        let mut d = dram();
        let total: usize = 1 << 20;
        let finish = d.request(0, total, 0.0);
        let gbps = total as f64 / finish;
        assert!(gbps > 10.0, "sustained bandwidth {gbps:.1} GB/s");
    }

    #[test]
    fn quiesce_resets_timing_not_stats() {
        let mut d = dram();
        d.request(0, 64, 0.0);
        d.quiesce();
        assert_eq!(d.stats().bytes, 64);
        // After quiesce, a new request at t=0 is legal again.
        let t = d.request(0, 64, 0.0);
        assert!(t > 0.0);
    }
}
