//! # vrd-sim — cycle-level SoC simulator for VR-DANN
//!
//! Substrate crate of the VR-DANN reproduction (MICRO 2020), standing in for
//! the paper's cycle-accurate simulator + DRAMSim + CACTI stack (§V-B). It
//! replays the workload traces produced by the `vr-dann` pipelines against:
//!
//! * an **NPU** behavioural timing model (Ascend-310 class, Table II) with
//!   explicit NN-L ↔ NN-S model-switch costs;
//! * a **video decoder** timing model (300 MHz, full-decode vs MV-only);
//! * a **DDR3** memory model with banks and row buffers ([`Dram`]);
//! * the **agent unit** — `ip_Q`/`b_Q`, `mv_T`, the 32-wide coalescing unit
//!   and the `tmp_B` buffers ([`agent`]);
//! * per-event **energy** accounting and the Fig. 14 **traffic** breakdown.
//!
//! Three execution modes reproduce Fig. 7: in-order (baselines),
//! VR-DANN-serial (software) and VR-DANN-parallel (the proposed
//! architecture, with ablations for coalescing, lagged switching and the
//! `tmp_B` count).
//!
//! ## Example
//!
//! ```
//! use vrd_sim::{simulate, ExecMode, SimConfig};
//! use vr_dann::baselines::{encode_default, run_favos};
//! use vrd_video::davis::{davis_sequence, SuiteConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let seq = davis_sequence("cows", &SuiteConfig::tiny())?;
//! let favos = run_favos(&seq, &encode_default(&seq)?, 1);
//! let report = simulate(&favos.trace, ExecMode::InOrder, &SimConfig::default());
//! assert!(report.fps > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod agent;
pub mod config;
pub mod dram;
pub mod report;
pub mod sched;
pub mod timeline;
pub mod traffic;

pub use agent::{AgentFootprint, ReconOutcome};
pub use config::{AgentConfig, CostConfig, DecoderConfig, DramConfig, NpuConfig, SimConfig};
pub use dram::{Dram, DramStats};
pub use report::{EnergyBreakdown, SimReport, TrafficBreakdown};
pub use sched::{simulate, simulate_stream, simulate_traced, ExecMode, ParallelOptions, StreamSim};
pub use timeline::{Lane, Span, SpanKind, Timeline};
