//! Simulation output: timing, energy and DRAM-traffic breakdowns.

use crate::dram::DramStats;
use vr_dann::SchemeKind;

/// DRAM traffic by category (the Fig. 14 breakdown).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TrafficBreakdown {
    /// Network weight streaming.
    pub weights: u64,
    /// Activations: raw decoded frames plus spilled feature maps.
    pub activations: u64,
    /// Motion-vector records.
    pub mv: u64,
    /// Segmentation reads/writes (reference fetches, reconstructions,
    /// results).
    pub seg: u64,
    /// Compressed bitstream reads.
    pub bitstream: u64,
}

impl TrafficBreakdown {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.weights + self.activations + self.mv + self.seg + self.bitstream
    }

    /// Accumulates another breakdown.
    pub fn merge(&mut self, other: &TrafficBreakdown) {
        self.weights += other.weights;
        self.activations += other.activations;
        self.mv += other.mv;
        self.seg += other.seg;
        self.bitstream += other.bitstream;
    }
}

/// Energy by component, in millijoules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// NPU compute energy.
    pub npu_mj: f64,
    /// DRAM transfer energy.
    pub dram_mj: f64,
    /// Video decoder energy.
    pub decoder_mj: f64,
    /// Agent-unit SRAM energy (VR-DANN-parallel only).
    pub agent_mj: f64,
    /// CPU software-reconstruction energy (VR-DANN-serial only).
    pub cpu_mj: f64,
    /// SoC static energy over the execution window.
    pub static_mj: f64,
}

impl EnergyBreakdown {
    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.npu_mj + self.dram_mj + self.decoder_mj + self.agent_mj + self.cpu_mj + self.static_mj
    }
}

/// Complete result of simulating one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// The scheme simulated.
    pub scheme: SchemeKind,
    /// Frames processed.
    pub frames: usize,
    /// End-to-end time in nanoseconds.
    pub total_ns: f64,
    /// Sustained recognition rate in frames/second.
    pub fps: f64,
    /// Time the NPU spent computing.
    pub npu_busy_ns: f64,
    /// Time lost to model switching.
    pub switch_ns: f64,
    /// Number of model switches.
    pub switches: usize,
    /// Time the NPU stalled waiting for B-frame reconstruction.
    pub recon_stall_ns: f64,
    /// Time spent in serial (CPU) reconstruction, if any.
    pub cpu_recon_ns: f64,
    /// Peak `b_Q` occupancy observed (VR-DANN-parallel only; must never
    /// exceed the configured 24 entries).
    pub max_b_q_occupancy: usize,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// DRAM traffic breakdown.
    pub traffic: TrafficBreakdown,
    /// Event-level DRAM statistics of the agent-unit accesses.
    pub dram: DramStats,
}

impl SimReport {
    /// Total simulated time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns / 1e6
    }

    /// Speed-up of this report relative to `baseline` (>1 = faster).
    pub fn speedup_vs(&self, baseline: &SimReport) -> f64 {
        baseline.total_ns / self.total_ns
    }

    /// Energy reduction relative to `baseline` (>1 = less energy).
    pub fn energy_reduction_vs(&self, baseline: &SimReport) -> f64 {
        baseline.energy.total_mj() / self.energy.total_mj()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_totals_and_merge() {
        let mut a = TrafficBreakdown {
            weights: 10,
            activations: 20,
            mv: 1,
            seg: 2,
            bitstream: 3,
        };
        assert_eq!(a.total(), 36);
        a.merge(&a.clone());
        assert_eq!(a.total(), 72);
    }

    #[test]
    fn report_ratios() {
        let mk = |ns: f64, mj: f64| SimReport {
            scheme: SchemeKind::Favos,
            frames: 10,
            total_ns: ns,
            fps: 10.0 / (ns / 1e9),
            npu_busy_ns: ns,
            switch_ns: 0.0,
            switches: 0,
            recon_stall_ns: 0.0,
            cpu_recon_ns: 0.0,
            max_b_q_occupancy: 0,
            energy: EnergyBreakdown {
                npu_mj: mj,
                ..EnergyBreakdown::default()
            },
            traffic: TrafficBreakdown::default(),
            dram: DramStats::default(),
        };
        let base = mk(100.0, 10.0);
        let fast = mk(25.0, 5.0);
        assert!((fast.speedup_vs(&base) - 4.0).abs() < 1e-9);
        assert!((fast.energy_reduction_vs(&base) - 2.0).abs() < 1e-9);
        assert!((base.total_ms() - 1e-4).abs() < 1e-12);
    }
}
