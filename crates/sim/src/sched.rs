//! Execution scheduling: FAVOS-style in-order, VR-DANN-serial and
//! VR-DANN-parallel timelines (Fig. 7).
//!
//! The simulator replays a [`SchemeTrace`] against the NPU, decoder, DRAM
//! and agent-unit models:
//!
//! * **in-order** — every frame waits for its decode, switches the NPU
//!   model when needed and runs; this covers all baselines.
//! * **VR-DANN-serial** — in-order, plus a blocking CPU reconstruction
//!   before every B-frame's NN-S run (§IV-A's software flow).
//! * **VR-DANN-parallel** — the agent unit reorders work (lagged queue
//!   switching), reconstructs B-frames concurrently with NPU compute
//!   through the coalescing unit and the `tmp_B` buffers, and drains the
//!   `b_Q` in batches, minimising model switches.

use crate::agent;
use crate::config::SimConfig;
use crate::dram::Dram;
use crate::report::{EnergyBreakdown, SimReport, TrafficBreakdown};
use crate::timeline::{Lane, SpanKind, Timeline};
use crate::traffic::frame_traffic;
use std::collections::{BTreeMap, VecDeque};
use vr_dann::{ComputeKind, SchemeTrace, TraceFrame};
use vrd_codec::MvRecord;

/// Options of the parallel architecture (the ablation knobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelOptions {
    /// Motion-vector coalescing in the agent unit (§IV-C). Off = every
    /// block fetched independently.
    pub coalesce: bool,
    /// Lagged queue switching (§IV-B). Off = strict decode order (still
    /// hardware-reconstructed, but switching on every frame-type change).
    pub lagged_switching: bool,
    /// Override the number of `tmp_B` buffers (None = config value).
    pub tmp_b_buffers: Option<usize>,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        Self {
            coalesce: true,
            lagged_switching: true,
            tmp_b_buffers: None,
        }
    }
}

/// How to execute a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecMode {
    /// Straightforward in-order execution (all baselines).
    InOrder,
    /// VR-DANN software flow: in-order with blocking CPU reconstruction.
    VrDannSerial,
    /// VR-DANN with the agent unit.
    VrDannParallel(ParallelOptions),
}

/// NPU-resident model families (switching between them costs time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Model {
    None,
    Large,
    Flow,
    Small,
}

fn model_of(kind: &ComputeKind) -> Model {
    match kind {
        ComputeKind::NnL { .. } => Model::Large,
        ComputeKind::FlowWarp { .. } => Model::Flow,
        ComputeKind::NnSRefine { .. } => Model::Small,
        ComputeKind::BoxShift => Model::None,
        // The staged head lives with the backbone weights: resident large
        // model, no switch between anchors and propagated B-frames.
        ComputeKind::FeatHead { .. } => Model::Large,
    }
}

fn span_of(kind: &ComputeKind) -> SpanKind {
    match kind {
        ComputeKind::NnL { .. } => SpanKind::NnL,
        ComputeKind::FlowWarp { .. } => SpanKind::Flow,
        ComputeKind::NnSRefine { .. } => SpanKind::NnS,
        ComputeKind::BoxShift => SpanKind::NnS, // zero ops: never recorded
        ComputeKind::FeatHead { .. } => SpanKind::Head,
    }
}

struct Machine<'a> {
    cfg: &'a SimConfig,
    t_npu: f64,
    model: Model,
    npu_busy_ns: f64,
    switch_ns: f64,
    switches: usize,
    recon_stall_ns: f64,
    cpu_recon_ns: f64,
    timeline: Timeline,
    record: bool,
}

impl<'a> Machine<'a> {
    fn new(cfg: &'a SimConfig, record: bool) -> Self {
        Self {
            cfg,
            t_npu: 0.0,
            model: Model::None,
            npu_busy_ns: 0.0,
            switch_ns: 0.0,
            switches: 0,
            recon_stall_ns: 0.0,
            cpu_recon_ns: 0.0,
            timeline: Timeline::default(),
            record,
        }
    }

    fn ensure_model(&mut self, m: Model) {
        if m == self.model {
            return;
        }
        let ns = match m {
            // Zero-op frames leave the resident model in place.
            Model::None => return,
            Model::Large | Model::Flow => self.cfg.switch_to_large_ns(),
            Model::Small => self.cfg.switch_to_small_ns(),
        };
        if self.record {
            self.timeline.record(
                Lane::Npu,
                SpanKind::Switch,
                self.t_npu,
                self.t_npu + ns,
                None,
            );
        }
        self.t_npu += ns;
        self.switch_ns += ns;
        self.switches += 1;
        self.model = m;
    }

    fn run_ops(&mut self, ops: u64, not_before: f64, kind: SpanKind, frame: Option<u32>) {
        self.t_npu = self.t_npu.max(not_before);
        let ns = ops as f64 / self.cfg.npu_ops_per_ns();
        if self.record {
            self.timeline
                .record(Lane::Npu, kind, self.t_npu, self.t_npu + ns, frame);
        }
        self.t_npu += ns;
        self.npu_busy_ns += ns;
    }
}

/// Simulates a trace under the chosen execution mode.
pub fn simulate(trace: &SchemeTrace, mode: ExecMode, cfg: &SimConfig) -> SimReport {
    simulate_impl(trace, mode, cfg, false).0
}

/// Simulates a trace and additionally records the execution [`Timeline`]
/// (the paper's Fig. 7 view).
pub fn simulate_traced(
    trace: &SchemeTrace,
    mode: ExecMode,
    cfg: &SimConfig,
) -> (SimReport, Timeline) {
    simulate_impl(trace, mode, cfg, true)
}

/// Simulates work items as they stream out of a pipeline run, without ever
/// holding the whole trace: push each [`TraceFrame`] as it is produced and
/// [`StreamSim::finish`] when the stream ends.
pub fn simulate_stream<'a, I>(
    frames: I,
    scheme: vr_dann::SchemeKind,
    width: usize,
    height: usize,
    mb_size: usize,
    mode: ExecMode,
    cfg: &SimConfig,
) -> SimReport
where
    I: IntoIterator<Item = &'a TraceFrame>,
{
    let mut sim = StreamSim::new(scheme, width, height, mb_size, mode, cfg, false);
    for f in frames {
        sim.push(f);
    }
    sim.finish().0
}

fn simulate_impl(
    trace: &SchemeTrace,
    mode: ExecMode,
    cfg: &SimConfig,
    record: bool,
) -> (SimReport, Timeline) {
    let mut sim = StreamSim::new(
        trace.scheme,
        trace.width,
        trace.height,
        trace.mb_size,
        mode,
        cfg,
        record,
    );
    for f in &trace.frames {
        sim.push(f);
    }
    sim.finish()
}

/// The single-pass simulator core shared by every entry point.
///
/// State is O(b_Q): the only frames retained are the B-frames currently
/// parked in the agent unit's `b_Q` (at most `cfg.agent.b_q_entries`), so a
/// pipeline can feed the scheduler frame by frame with bounded memory.
pub struct StreamSim<'a> {
    scheme: vr_dann::SchemeKind,
    width: usize,
    height: usize,
    mb_size: usize,
    mode: ExecMode,
    machine: Machine<'a>,
    // Incremental decoder-lane clock (decode-completion time of the last
    // pushed frame) and its span buffer — decoder spans lead the timeline.
    t_decode: f64,
    decoder_cycles: f64,
    last_ready: f64,
    decode_spans: Vec<(bool, f64, f64, u32)>,
    n_frames: usize,
    total_ops: u64,
    dram: Dram,
    traffic: TrafficBreakdown,
    tmp_b_accesses: u64,
    serial_mvs: u64,
    max_b_q: usize,
    // VR-DANN-parallel state: NPU finish time of each processed anchor (for
    // recon deps), agent-unit availability, tmp_B consumption gates and the
    // parked B-frames with their decode-ready times.
    anchor_done: BTreeMap<u32, f64>,
    agent_free: f64,
    consumed: VecDeque<f64>,
    // Parked B-frames, already destructured to what the drain needs:
    // (decode-ready time, display, NN-S ops, MV records). Storing the
    // parts — not the TraceFrame — makes "b_Q only holds B-frames" a
    // type-level fact instead of a runtime assertion.
    b_q: Vec<(f64, u32, u64, Vec<MvRecord>)>,
}

impl<'a> StreamSim<'a> {
    /// Starts a streaming simulation. `record` enables timeline capture.
    pub fn new(
        scheme: vr_dann::SchemeKind,
        width: usize,
        height: usize,
        mb_size: usize,
        mode: ExecMode,
        cfg: &'a SimConfig,
        record: bool,
    ) -> Self {
        Self {
            scheme,
            width,
            height,
            mb_size,
            mode,
            machine: Machine::new(cfg, record),
            t_decode: 0.0,
            decoder_cycles: 0.0,
            last_ready: 0.0,
            decode_spans: Vec::new(),
            n_frames: 0,
            total_ops: 0,
            dram: Dram::new(cfg.dram),
            traffic: TrafficBreakdown::default(),
            tmp_b_accesses: 0,
            serial_mvs: 0,
            max_b_q: 0,
            anchor_done: BTreeMap::new(),
            agent_free: 0.0,
            consumed: VecDeque::new(),
            b_q: Vec::new(),
        }
    }

    /// Feeds the next work item (decode order).
    pub fn push(&mut self, f: &TraceFrame) {
        let cfg = self.machine.cfg;
        // Decoder lane: this frame's decode-completion time.
        let px = (self.width * self.height) as f64;
        let cpp = if f.full_decode {
            cfg.decoder.cycles_per_pixel_full
        } else {
            cfg.decoder.cycles_per_pixel_mv
        };
        let cycles = px * cpp;
        self.decoder_cycles += cycles;
        let start = self.t_decode;
        self.t_decode += cycles / cfg.decoder.freq_hz * 1e9;
        let ready = self.t_decode;
        self.last_ready = ready;
        if self.machine.record {
            self.decode_spans
                .push((f.full_decode, start, ready, f.display));
        }
        self.n_frames += 1;
        self.total_ops += f.kind.ops();
        self.traffic
            .merge(&frame_traffic(f, self.width, self.height, &cfg.cost));

        match self.mode {
            ExecMode::InOrder | ExecMode::VrDannSerial => {
                let serial = matches!(self.mode, ExecMode::VrDannSerial);
                self.machine.t_npu = self.machine.t_npu.max(ready);
                if let ComputeKind::NnSRefine { mvs, .. } = &f.kind {
                    if serial {
                        // Blocking CPU reconstruction: scattered accesses,
                        // nothing overlapped.
                        let refs = mvs.iter().map(|m| 1 + m.ref1.is_some() as u64).sum::<u64>();
                        let ns = mvs.len() as f64 * cfg.cost.cpu_ns_per_mv;
                        if self.machine.record {
                            self.machine.timeline.record(
                                Lane::Cpu,
                                SpanKind::Recon,
                                self.machine.t_npu,
                                self.machine.t_npu + ns,
                                Some(f.display),
                            );
                        }
                        self.machine.t_npu += ns;
                        self.machine.cpu_recon_ns += ns;
                        self.serial_mvs += mvs.len() as u64;
                        self.traffic.seg += refs * 512 + (self.width * self.height / 4) as u64;
                    }
                }
                self.machine.ensure_model(model_of(&f.kind));
                self.machine
                    .run_ops(f.kind.ops(), ready, span_of(&f.kind), Some(f.display));
            }
            ExecMode::VrDannParallel(opts) => match &f.kind {
                ComputeKind::NnSRefine { ops, mvs } => {
                    self.b_q.push((ready, f.display, *ops, mvs.clone()));
                    self.max_b_q = self.max_b_q.max(self.b_q.len());
                    if self.b_q.len() >= cfg.agent.b_q_entries || !opts.lagged_switching {
                        self.drain_b_q(opts);
                    }
                }
                _ => {
                    if !opts.lagged_switching && !self.b_q.is_empty() {
                        self.drain_b_q(opts);
                    }
                    self.machine.ensure_model(model_of(&f.kind));
                    self.machine
                        .run_ops(f.kind.ops(), ready, span_of(&f.kind), Some(f.display));
                    self.anchor_done.insert(f.display, self.machine.t_npu);
                }
            },
        }
    }

    /// Reconstructs and refines every parked B-frame, in arrival order.
    fn drain_b_q(&mut self, opts: ParallelOptions) {
        let cfg = self.machine.cfg;
        let tmp_b = opts.tmp_b_buffers.unwrap_or(cfg.agent.tmp_b_buffers).max(1);
        for (ready, display, ops, mvs) in std::mem::take(&mut self.b_q) {
            let refs_done = mvs
                .iter()
                .flat_map(|m| std::iter::once(m.ref0.frame).chain(m.ref1.map(|r| r.frame)))
                .map(|fr| self.anchor_done.get(&fr).copied().unwrap_or(0.0))
                .fold(0.0f64, f64::max);
            let gate = if self.consumed.len() >= tmp_b {
                self.consumed[self.consumed.len() - tmp_b]
            } else {
                0.0
            };
            let start = ready.max(refs_done).max(self.agent_free).max(gate);
            let outcome = agent::reconstruct(
                &mvs,
                self.width,
                self.height,
                self.mb_size,
                opts.coalesce,
                &cfg.agent,
                &mut self.dram,
                start,
            );
            self.agent_free = outcome.finish_ns;
            self.traffic.seg += outcome.seg_bytes;
            self.tmp_b_accesses += outcome.tmp_b_accesses;
            if self.machine.record {
                self.machine.timeline.record(
                    Lane::Agent,
                    SpanKind::Recon,
                    start,
                    outcome.finish_ns,
                    Some(display),
                );
            }

            self.machine.ensure_model(Model::Small);
            let stall = (outcome.finish_ns - self.machine.t_npu).max(0.0);
            self.machine.recon_stall_ns += stall;
            self.machine
                .run_ops(ops, outcome.finish_ns, SpanKind::NnS, Some(display));
            self.consumed.push_back(self.machine.t_npu);
        }
    }

    /// Ends the stream: drains any parked B-frames and closes the books.
    pub fn finish(mut self) -> (SimReport, Timeline) {
        if let ExecMode::VrDannParallel(opts) = self.mode {
            self.drain_b_q(opts);
        }
        let cfg = self.machine.cfg;
        // Note: model-switch weight reloads are *not* added to the traffic —
        // per-inference weight streaming already accounts for the weight
        // bytes; the switch cost models the pipeline bubble (latency), not
        // new data.
        let total_ns = self.machine.t_npu.max(self.last_ready);
        let energy = EnergyBreakdown {
            npu_mj: self.total_ops as f64 * cfg.cost.npu_pj_per_op / 1e9,
            dram_mj: self.traffic.total() as f64 * cfg.dram.pj_per_byte / 1e9,
            decoder_mj: self.decoder_cycles * cfg.decoder.pj_per_cycle / 1e9,
            agent_mj: self.tmp_b_accesses as f64 * cfg.agent.tmp_b_nj_per_access / 1e6,
            cpu_mj: self.serial_mvs as f64 * cfg.cost.cpu_nj_per_mv / 1e6,
            // mW x ns = pJ; 1e9 pJ per mJ.
            static_mj: total_ns * cfg.cost.soc_static_mw / 1e9,
        };
        let report = SimReport {
            scheme: self.scheme,
            frames: self.n_frames,
            total_ns,
            fps: self.n_frames as f64 / (total_ns / 1e9),
            npu_busy_ns: self.machine.npu_busy_ns,
            switch_ns: self.machine.switch_ns,
            switches: self.machine.switches,
            recon_stall_ns: self.machine.recon_stall_ns,
            cpu_recon_ns: self.machine.cpu_recon_ns,
            max_b_q_occupancy: self.max_b_q,
            energy,
            traffic: self.traffic,
            dram: *self.dram.stats(),
        };
        // Decoder spans lead the timeline, as readers of the Fig. 7 view
        // (and the pre-streaming simulator) expect.
        let mut timeline = Timeline::default();
        for (full, start, end, frame) in self.decode_spans {
            let kind = if full {
                SpanKind::DecodeFull
            } else {
                SpanKind::DecodeMv
            };
            timeline.record(Lane::Decoder, kind, start, end, Some(frame));
        }
        timeline.spans.append(&mut self.machine.timeline.spans);
        (report, timeline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_dann::baselines::{encode_default, run_favos};
    use vr_dann::{TrainTask, VrDann, VrDannConfig};
    use vrd_video::davis::{davis_sequence, davis_train_suite, SuiteConfig};

    fn vr_trace() -> (SchemeTrace, SchemeTrace) {
        let cfg = SuiteConfig::tiny();
        let train = davis_train_suite(&cfg, 2);
        let model = VrDann::train(
            &train,
            TrainTask::Segmentation,
            VrDannConfig {
                nns_hidden: 4,
                ..VrDannConfig::default()
            },
        )
        .unwrap();
        let seq = davis_sequence("cows", &cfg).unwrap();
        let encoded = model.encode(&seq).unwrap();
        let vr = model.run_segmentation(&seq, &encoded).unwrap();
        let favos = run_favos(&seq, &encode_default(&seq).unwrap(), 1);
        (vr.trace, favos.trace)
    }

    #[test]
    fn parallel_beats_serial_beats_favos() {
        let (vr, favos) = vr_trace();
        let cfg = SimConfig::default();
        let r_favos = simulate(&favos, ExecMode::InOrder, &cfg);
        let r_serial = simulate(&vr, ExecMode::VrDannSerial, &cfg);
        let r_par = simulate(
            &vr,
            ExecMode::VrDannParallel(ParallelOptions::default()),
            &cfg,
        );
        assert!(
            r_par.total_ns < r_serial.total_ns,
            "parallel {} >= serial {}",
            r_par.total_ns,
            r_serial.total_ns
        );
        assert!(
            r_serial.total_ns < r_favos.total_ns,
            "serial {} >= favos {}",
            r_serial.total_ns,
            r_favos.total_ns
        );
        // Parallel minimises switches (one drain per b_Q fill).
        assert!(r_par.switches < r_serial.switches);
        // Energy ordering matches the paper.
        assert!(r_par.energy.total_mj() < r_favos.energy.total_mj());
    }

    #[test]
    fn coalescing_reduces_recon_stall_and_traffic() {
        let (vr, _) = vr_trace();
        let cfg = SimConfig::default();
        let with = simulate(
            &vr,
            ExecMode::VrDannParallel(ParallelOptions::default()),
            &cfg,
        );
        let without = simulate(
            &vr,
            ExecMode::VrDannParallel(ParallelOptions {
                coalesce: false,
                ..ParallelOptions::default()
            }),
            &cfg,
        );
        assert!(with.traffic.seg < without.traffic.seg);
        assert!(with.total_ns <= without.total_ns);
        // Scattered fetches issue far more bursts for the same blocks.
        assert!(with.dram.bytes < without.dram.bytes);
    }

    #[test]
    fn lagged_switching_cuts_switches() {
        let (vr, _) = vr_trace();
        let cfg = SimConfig::default();
        let lagged = simulate(
            &vr,
            ExecMode::VrDannParallel(ParallelOptions::default()),
            &cfg,
        );
        let strict = simulate(
            &vr,
            ExecMode::VrDannParallel(ParallelOptions {
                lagged_switching: false,
                ..ParallelOptions::default()
            }),
            &cfg,
        );
        assert!(lagged.switches < strict.switches);
        assert!(lagged.total_ns < strict.total_ns);
    }

    #[test]
    fn b_q_occupancy_is_tracked_and_bounded() {
        let (vr, _) = vr_trace();
        let cfg = SimConfig::default();
        let r = simulate(
            &vr,
            ExecMode::VrDannParallel(ParallelOptions::default()),
            &cfg,
        );
        assert!(r.max_b_q_occupancy > 0, "no B-frames queued");
        assert!(
            r.max_b_q_occupancy <= cfg.agent.b_q_entries,
            "b_Q overflowed: {}",
            r.max_b_q_occupancy
        );
        // In-order modes never use the queue.
        let s = simulate(&vr, ExecMode::VrDannSerial, &cfg);
        assert_eq!(s.max_b_q_occupancy, 0);
    }

    #[test]
    fn traced_timeline_matches_report_and_shows_overlap() {
        let (vr, _) = vr_trace();
        let cfg = SimConfig::default();
        let (report, tl) = crate::sched::simulate_traced(
            &vr,
            ExecMode::VrDannParallel(ParallelOptions::default()),
            &cfg,
        );
        // Lane accounting agrees with the report.
        assert!(
            (tl.lane_busy_ns(crate::Lane::Npu) - (report.npu_busy_ns + report.switch_ns)).abs()
                < 1.0
        );
        assert!(tl.end_ns() <= report.total_ns + 1.0);
        // The agent lane is busy (hardware reconstruction happened)...
        assert!(tl.lane_busy_ns(crate::Lane::Agent) > 0.0);
        // ...and at least one reconstruction overlaps NPU compute (the
        // "hidden latency" mechanism of Fig. 7).
        let npu: Vec<&crate::Span> = tl
            .spans
            .iter()
            .filter(|s| s.lane == crate::Lane::Npu)
            .collect();
        let overlapping = tl
            .spans
            .iter()
            .filter(|s| s.lane == crate::Lane::Agent)
            .any(|a| {
                npu.iter()
                    .any(|n| a.start_ns < n.end_ns && n.start_ns < a.end_ns)
            });
        assert!(overlapping, "no reconstruction overlapped NPU compute");
        // Serial mode shows CPU-lane work instead.
        let (_, tl_serial) = crate::sched::simulate_traced(&vr, ExecMode::VrDannSerial, &cfg);
        assert!(tl_serial.lane_busy_ns(crate::Lane::Cpu) > 0.0);
        assert_eq!(tl_serial.lane_busy_ns(crate::Lane::Agent), 0.0);
        // Untraced runs record nothing.
        let plain = simulate(&vr, ExecMode::VrDannSerial, &cfg);
        assert!(plain.cpu_recon_ns > 0.0);
    }

    #[test]
    fn decode_bound_never_exceeded() {
        let (vr, favos) = vr_trace();
        let cfg = SimConfig::default();
        for (trace, mode) in [
            (&favos, ExecMode::InOrder),
            (&vr, ExecMode::VrDannParallel(ParallelOptions::default())),
        ] {
            let r = simulate(trace, mode, &cfg);
            // Total time is at least the decoder stream time.
            let px = (trace.width * trace.height) as f64;
            let stream_ns: f64 = trace
                .frames
                .iter()
                .map(|f| {
                    let cpp = if f.full_decode {
                        cfg.decoder.cycles_per_pixel_full
                    } else {
                        cfg.decoder.cycles_per_pixel_mv
                    };
                    px * cpp / cfg.decoder.freq_hz * 1e9
                })
                .sum();
            assert!(r.total_ns >= stream_ns - 1e-6);
            assert!(r.fps > 0.0);
        }
    }

    #[test]
    fn streamed_feed_matches_whole_trace_simulation() {
        let (vr, favos) = vr_trace();
        let cfg = SimConfig::default();
        for (trace, mode) in [
            (&favos, ExecMode::InOrder),
            (&vr, ExecMode::VrDannSerial),
            (&vr, ExecMode::VrDannParallel(ParallelOptions::default())),
        ] {
            let whole = simulate(trace, mode, &cfg);
            let streamed = simulate_stream(
                trace.frames.iter(),
                trace.scheme,
                trace.width,
                trace.height,
                trace.mb_size,
                mode,
                &cfg,
            );
            assert_eq!(whole.total_ns.to_bits(), streamed.total_ns.to_bits());
            assert_eq!(whole.switches, streamed.switches);
            assert_eq!(whole.traffic, streamed.traffic);
            assert_eq!(
                whole.energy.total_mj().to_bits(),
                streamed.energy.total_mj().to_bits()
            );
            assert_eq!(whole.max_b_q_occupancy, streamed.max_b_q_occupancy);
        }
    }

    #[test]
    fn more_tmp_b_buffers_never_hurt() {
        let (vr, _) = vr_trace();
        let cfg = SimConfig::default();
        let run = |n: usize| {
            simulate(
                &vr,
                ExecMode::VrDannParallel(ParallelOptions {
                    tmp_b_buffers: Some(n),
                    ..ParallelOptions::default()
                }),
                &cfg,
            )
            .total_ns
        };
        let one = run(1);
        let three = run(3);
        let eight = run(8);
        assert!(three <= one);
        assert!(eight <= three + 1.0);
    }
}
