//! Execution scheduling: FAVOS-style in-order, VR-DANN-serial and
//! VR-DANN-parallel timelines (Fig. 7).
//!
//! The simulator replays a [`SchemeTrace`] against the NPU, decoder, DRAM
//! and agent-unit models:
//!
//! * **in-order** — every frame waits for its decode, switches the NPU
//!   model when needed and runs; this covers all baselines.
//! * **VR-DANN-serial** — in-order, plus a blocking CPU reconstruction
//!   before every B-frame's NN-S run (§IV-A's software flow).
//! * **VR-DANN-parallel** — the agent unit reorders work (lagged queue
//!   switching), reconstructs B-frames concurrently with NPU compute
//!   through the coalescing unit and the `tmp_B` buffers, and drains the
//!   `b_Q` in batches, minimising model switches.

use crate::agent;
use crate::config::SimConfig;
use crate::dram::Dram;
use crate::report::{EnergyBreakdown, SimReport, TrafficBreakdown};
use crate::timeline::{Lane, SpanKind, Timeline};
use crate::traffic::frame_traffic;
use std::collections::{BTreeMap, VecDeque};
use vr_dann::{ComputeKind, SchemeTrace, TraceFrame};

/// Options of the parallel architecture (the ablation knobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelOptions {
    /// Motion-vector coalescing in the agent unit (§IV-C). Off = every
    /// block fetched independently.
    pub coalesce: bool,
    /// Lagged queue switching (§IV-B). Off = strict decode order (still
    /// hardware-reconstructed, but switching on every frame-type change).
    pub lagged_switching: bool,
    /// Override the number of `tmp_B` buffers (None = config value).
    pub tmp_b_buffers: Option<usize>,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        Self {
            coalesce: true,
            lagged_switching: true,
            tmp_b_buffers: None,
        }
    }
}

/// How to execute a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecMode {
    /// Straightforward in-order execution (all baselines).
    InOrder,
    /// VR-DANN software flow: in-order with blocking CPU reconstruction.
    VrDannSerial,
    /// VR-DANN with the agent unit.
    VrDannParallel(ParallelOptions),
}

/// NPU-resident model families (switching between them costs time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Model {
    None,
    Large,
    Flow,
    Small,
}

fn model_of(kind: &ComputeKind) -> Model {
    match kind {
        ComputeKind::NnL { .. } => Model::Large,
        ComputeKind::FlowWarp { .. } => Model::Flow,
        ComputeKind::NnSRefine { .. } => Model::Small,
        ComputeKind::BoxShift => Model::None,
    }
}

fn span_of(kind: &ComputeKind) -> SpanKind {
    match kind {
        ComputeKind::NnL { .. } => SpanKind::NnL,
        ComputeKind::FlowWarp { .. } => SpanKind::Flow,
        ComputeKind::NnSRefine { .. } => SpanKind::NnS,
        ComputeKind::BoxShift => SpanKind::NnS, // zero ops: never recorded
    }
}

struct Machine<'a> {
    cfg: &'a SimConfig,
    t_npu: f64,
    model: Model,
    npu_busy_ns: f64,
    switch_ns: f64,
    switches: usize,
    recon_stall_ns: f64,
    cpu_recon_ns: f64,
    timeline: Timeline,
    record: bool,
}

impl<'a> Machine<'a> {
    fn new(cfg: &'a SimConfig, record: bool) -> Self {
        Self {
            cfg,
            t_npu: 0.0,
            model: Model::None,
            npu_busy_ns: 0.0,
            switch_ns: 0.0,
            switches: 0,
            recon_stall_ns: 0.0,
            cpu_recon_ns: 0.0,
            timeline: Timeline::default(),
            record,
        }
    }

    fn ensure_model(&mut self, m: Model) {
        if m == Model::None || m == self.model {
            return;
        }
        let ns = match m {
            Model::Large | Model::Flow => self.cfg.switch_to_large_ns(),
            Model::Small => self.cfg.switch_to_small_ns(),
            Model::None => unreachable!(),
        };
        if self.record {
            self.timeline.record(
                Lane::Npu,
                SpanKind::Switch,
                self.t_npu,
                self.t_npu + ns,
                None,
            );
        }
        self.t_npu += ns;
        self.switch_ns += ns;
        self.switches += 1;
        self.model = m;
    }

    fn run_ops(&mut self, ops: u64, not_before: f64, kind: SpanKind, frame: Option<u32>) {
        self.t_npu = self.t_npu.max(not_before);
        let ns = ops as f64 / self.cfg.npu_ops_per_ns();
        if self.record {
            self.timeline
                .record(Lane::Npu, kind, self.t_npu, self.t_npu + ns, frame);
        }
        self.t_npu += ns;
        self.npu_busy_ns += ns;
    }
}

/// Decode-completion time of every frame, in trace order.
fn decode_ready(
    trace: &SchemeTrace,
    cfg: &SimConfig,
    timeline: Option<&mut Timeline>,
) -> (Vec<f64>, f64) {
    let px = (trace.width * trace.height) as f64;
    let mut t = 0.0;
    let mut total_cycles = 0.0;
    let mut spans = Vec::new();
    let ready: Vec<f64> = trace
        .frames
        .iter()
        .map(|f| {
            let cpp = if f.full_decode {
                cfg.decoder.cycles_per_pixel_full
            } else {
                cfg.decoder.cycles_per_pixel_mv
            };
            let cycles = px * cpp;
            total_cycles += cycles;
            let start = t;
            t += cycles / cfg.decoder.freq_hz * 1e9;
            spans.push((f.full_decode, start, t, f.display));
            t
        })
        .collect();
    if let Some(tl) = timeline {
        for (full, start, end, frame) in spans {
            let kind = if full {
                SpanKind::DecodeFull
            } else {
                SpanKind::DecodeMv
            };
            tl.record(Lane::Decoder, kind, start, end, Some(frame));
        }
    }
    (ready, total_cycles)
}

/// Simulates a trace under the chosen execution mode.
pub fn simulate(trace: &SchemeTrace, mode: ExecMode, cfg: &SimConfig) -> SimReport {
    simulate_impl(trace, mode, cfg, false).0
}

/// Simulates a trace and additionally records the execution [`Timeline`]
/// (the paper's Fig. 7 view).
pub fn simulate_traced(
    trace: &SchemeTrace,
    mode: ExecMode,
    cfg: &SimConfig,
) -> (SimReport, Timeline) {
    simulate_impl(trace, mode, cfg, true)
}

fn simulate_impl(
    trace: &SchemeTrace,
    mode: ExecMode,
    cfg: &SimConfig,
    record: bool,
) -> (SimReport, Timeline) {
    let mut machine = Machine::new(cfg, record);
    let (ready, decoder_cycles) = decode_ready(trace, cfg, record.then_some(&mut machine.timeline));
    let mut dram = Dram::new(cfg.dram);
    let mut traffic = TrafficBreakdown::default();
    let mut tmp_b_accesses = 0u64;
    let mut serial_mvs = 0u64;
    let mut max_b_q = 0usize;

    for f in &trace.frames {
        traffic.merge(&frame_traffic(f, trace.width, trace.height, &cfg.cost));
    }

    match mode {
        ExecMode::InOrder | ExecMode::VrDannSerial => {
            let serial = matches!(mode, ExecMode::VrDannSerial);
            for (i, f) in trace.frames.iter().enumerate() {
                machine.t_npu = machine.t_npu.max(ready[i]);
                if let ComputeKind::NnSRefine { mvs, .. } = &f.kind {
                    if serial {
                        // Blocking CPU reconstruction: scattered accesses,
                        // nothing overlapped.
                        let refs = mvs.iter().map(|m| 1 + m.ref1.is_some() as u64).sum::<u64>();
                        let ns = mvs.len() as f64 * cfg.cost.cpu_ns_per_mv;
                        if machine.record {
                            machine.timeline.record(
                                Lane::Cpu,
                                SpanKind::Recon,
                                machine.t_npu,
                                machine.t_npu + ns,
                                Some(f.display),
                            );
                        }
                        machine.t_npu += ns;
                        machine.cpu_recon_ns += ns;
                        serial_mvs += mvs.len() as u64;
                        traffic.seg += refs * 512 + (trace.width * trace.height / 4) as u64;
                    }
                }
                machine.ensure_model(model_of(&f.kind));
                machine.run_ops(f.kind.ops(), ready[i], span_of(&f.kind), Some(f.display));
            }
        }
        ExecMode::VrDannParallel(opts) => {
            let tmp_b = opts.tmp_b_buffers.unwrap_or(cfg.agent.tmp_b_buffers).max(1);
            // NPU finish time of each processed anchor (for recon deps).
            let mut anchor_done: BTreeMap<u32, f64> = BTreeMap::new();
            let mut agent_free = 0.0f64;
            // Consumption times gating tmp_B reuse.
            let mut consumed: VecDeque<f64> = VecDeque::new();
            // Queued B-frames: (trace index).
            let mut b_q: Vec<usize> = Vec::new();

            let drain = |b_q: &mut Vec<usize>,
                         machine: &mut Machine,
                         agent_free: &mut f64,
                         consumed: &mut VecDeque<f64>,
                         dram: &mut Dram,
                         anchor_done: &BTreeMap<u32, f64>,
                         traffic: &mut TrafficBreakdown,
                         tmp_b_accesses: &mut u64| {
                for &i in b_q.iter() {
                    let f: &TraceFrame = &trace.frames[i];
                    let ComputeKind::NnSRefine { ops, mvs } = &f.kind else {
                        unreachable!("b_Q only holds B-frames");
                    };
                    let refs_done = mvs
                        .iter()
                        .flat_map(|m| std::iter::once(m.ref0.frame).chain(m.ref1.map(|r| r.frame)))
                        .map(|fr| anchor_done.get(&fr).copied().unwrap_or(0.0))
                        .fold(0.0f64, f64::max);
                    let gate = if consumed.len() >= tmp_b {
                        consumed[consumed.len() - tmp_b]
                    } else {
                        0.0
                    };
                    let start = ready[i].max(refs_done).max(*agent_free).max(gate);
                    let outcome = agent::reconstruct(
                        mvs,
                        trace.width,
                        trace.height,
                        trace.mb_size,
                        opts.coalesce,
                        &cfg.agent,
                        dram,
                        start,
                    );
                    *agent_free = outcome.finish_ns;
                    traffic.seg += outcome.seg_bytes;
                    *tmp_b_accesses += outcome.tmp_b_accesses;
                    if machine.record {
                        machine.timeline.record(
                            Lane::Agent,
                            SpanKind::Recon,
                            start,
                            outcome.finish_ns,
                            Some(f.display),
                        );
                    }

                    machine.ensure_model(Model::Small);
                    let stall = (outcome.finish_ns - machine.t_npu).max(0.0);
                    machine.recon_stall_ns += stall;
                    machine.run_ops(*ops, outcome.finish_ns, SpanKind::NnS, Some(f.display));
                    consumed.push_back(machine.t_npu);
                }
                b_q.clear();
            };

            for (i, f) in trace.frames.iter().enumerate() {
                match &f.kind {
                    ComputeKind::NnSRefine { .. } => {
                        b_q.push(i);
                        max_b_q = max_b_q.max(b_q.len());
                        if b_q.len() >= cfg.agent.b_q_entries || !opts.lagged_switching {
                            drain(
                                &mut b_q,
                                &mut machine,
                                &mut agent_free,
                                &mut consumed,
                                &mut dram,
                                &anchor_done,
                                &mut traffic,
                                &mut tmp_b_accesses,
                            );
                        }
                    }
                    _ => {
                        if !opts.lagged_switching && !b_q.is_empty() {
                            drain(
                                &mut b_q,
                                &mut machine,
                                &mut agent_free,
                                &mut consumed,
                                &mut dram,
                                &anchor_done,
                                &mut traffic,
                                &mut tmp_b_accesses,
                            );
                        }
                        machine.ensure_model(model_of(&f.kind));
                        machine.run_ops(f.kind.ops(), ready[i], span_of(&f.kind), Some(f.display));
                        anchor_done.insert(f.display, machine.t_npu);
                    }
                }
            }
            drain(
                &mut b_q,
                &mut machine,
                &mut agent_free,
                &mut consumed,
                &mut dram,
                &anchor_done,
                &mut traffic,
                &mut tmp_b_accesses,
            );
        }
    }

    // Note: model-switch weight reloads are *not* added to the traffic —
    // per-inference weight streaming already accounts for the weight bytes;
    // the switch cost models the pipeline bubble (latency), not new data.
    let total_ns = machine.t_npu.max(ready.last().copied().unwrap_or(0.0));
    let energy = EnergyBreakdown {
        npu_mj: trace.total_ops() as f64 * cfg.cost.npu_pj_per_op / 1e9,
        dram_mj: traffic.total() as f64 * cfg.dram.pj_per_byte / 1e9,
        decoder_mj: decoder_cycles * cfg.decoder.pj_per_cycle / 1e9,
        agent_mj: tmp_b_accesses as f64 * cfg.agent.tmp_b_nj_per_access / 1e6,
        cpu_mj: serial_mvs as f64 * cfg.cost.cpu_nj_per_mv / 1e6,
        // mW x ns = pJ; 1e9 pJ per mJ.
        static_mj: total_ns * cfg.cost.soc_static_mw / 1e9,
    };
    let report = SimReport {
        scheme: trace.scheme,
        frames: trace.frames.len(),
        total_ns,
        fps: trace.frames.len() as f64 / (total_ns / 1e9),
        npu_busy_ns: machine.npu_busy_ns,
        switch_ns: machine.switch_ns,
        switches: machine.switches,
        recon_stall_ns: machine.recon_stall_ns,
        cpu_recon_ns: machine.cpu_recon_ns,
        max_b_q_occupancy: max_b_q,
        energy,
        traffic,
        dram: *dram.stats(),
    };
    (report, machine.timeline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_dann::baselines::{encode_default, run_favos};
    use vr_dann::{TrainTask, VrDann, VrDannConfig};
    use vrd_video::davis::{davis_sequence, davis_train_suite, SuiteConfig};

    fn vr_trace() -> (SchemeTrace, SchemeTrace) {
        let cfg = SuiteConfig::tiny();
        let train = davis_train_suite(&cfg, 2);
        let model = VrDann::train(
            &train,
            TrainTask::Segmentation,
            VrDannConfig {
                nns_hidden: 4,
                ..VrDannConfig::default()
            },
        )
        .unwrap();
        let seq = davis_sequence("cows", &cfg).unwrap();
        let encoded = model.encode(&seq).unwrap();
        let vr = model.run_segmentation(&seq, &encoded).unwrap();
        let favos = run_favos(&seq, &encode_default(&seq).unwrap(), 1);
        (vr.trace, favos.trace)
    }

    #[test]
    fn parallel_beats_serial_beats_favos() {
        let (vr, favos) = vr_trace();
        let cfg = SimConfig::default();
        let r_favos = simulate(&favos, ExecMode::InOrder, &cfg);
        let r_serial = simulate(&vr, ExecMode::VrDannSerial, &cfg);
        let r_par = simulate(
            &vr,
            ExecMode::VrDannParallel(ParallelOptions::default()),
            &cfg,
        );
        assert!(
            r_par.total_ns < r_serial.total_ns,
            "parallel {} >= serial {}",
            r_par.total_ns,
            r_serial.total_ns
        );
        assert!(
            r_serial.total_ns < r_favos.total_ns,
            "serial {} >= favos {}",
            r_serial.total_ns,
            r_favos.total_ns
        );
        // Parallel minimises switches (one drain per b_Q fill).
        assert!(r_par.switches < r_serial.switches);
        // Energy ordering matches the paper.
        assert!(r_par.energy.total_mj() < r_favos.energy.total_mj());
    }

    #[test]
    fn coalescing_reduces_recon_stall_and_traffic() {
        let (vr, _) = vr_trace();
        let cfg = SimConfig::default();
        let with = simulate(
            &vr,
            ExecMode::VrDannParallel(ParallelOptions::default()),
            &cfg,
        );
        let without = simulate(
            &vr,
            ExecMode::VrDannParallel(ParallelOptions {
                coalesce: false,
                ..ParallelOptions::default()
            }),
            &cfg,
        );
        assert!(with.traffic.seg < without.traffic.seg);
        assert!(with.total_ns <= without.total_ns);
        // Scattered fetches issue far more bursts for the same blocks.
        assert!(with.dram.bytes < without.dram.bytes);
    }

    #[test]
    fn lagged_switching_cuts_switches() {
        let (vr, _) = vr_trace();
        let cfg = SimConfig::default();
        let lagged = simulate(
            &vr,
            ExecMode::VrDannParallel(ParallelOptions::default()),
            &cfg,
        );
        let strict = simulate(
            &vr,
            ExecMode::VrDannParallel(ParallelOptions {
                lagged_switching: false,
                ..ParallelOptions::default()
            }),
            &cfg,
        );
        assert!(lagged.switches < strict.switches);
        assert!(lagged.total_ns < strict.total_ns);
    }

    #[test]
    fn b_q_occupancy_is_tracked_and_bounded() {
        let (vr, _) = vr_trace();
        let cfg = SimConfig::default();
        let r = simulate(
            &vr,
            ExecMode::VrDannParallel(ParallelOptions::default()),
            &cfg,
        );
        assert!(r.max_b_q_occupancy > 0, "no B-frames queued");
        assert!(
            r.max_b_q_occupancy <= cfg.agent.b_q_entries,
            "b_Q overflowed: {}",
            r.max_b_q_occupancy
        );
        // In-order modes never use the queue.
        let s = simulate(&vr, ExecMode::VrDannSerial, &cfg);
        assert_eq!(s.max_b_q_occupancy, 0);
    }

    #[test]
    fn traced_timeline_matches_report_and_shows_overlap() {
        let (vr, _) = vr_trace();
        let cfg = SimConfig::default();
        let (report, tl) = crate::sched::simulate_traced(
            &vr,
            ExecMode::VrDannParallel(ParallelOptions::default()),
            &cfg,
        );
        // Lane accounting agrees with the report.
        assert!(
            (tl.lane_busy_ns(crate::Lane::Npu) - (report.npu_busy_ns + report.switch_ns)).abs()
                < 1.0
        );
        assert!(tl.end_ns() <= report.total_ns + 1.0);
        // The agent lane is busy (hardware reconstruction happened)...
        assert!(tl.lane_busy_ns(crate::Lane::Agent) > 0.0);
        // ...and at least one reconstruction overlaps NPU compute (the
        // "hidden latency" mechanism of Fig. 7).
        let npu: Vec<&crate::Span> = tl
            .spans
            .iter()
            .filter(|s| s.lane == crate::Lane::Npu)
            .collect();
        let overlapping = tl
            .spans
            .iter()
            .filter(|s| s.lane == crate::Lane::Agent)
            .any(|a| {
                npu.iter()
                    .any(|n| a.start_ns < n.end_ns && n.start_ns < a.end_ns)
            });
        assert!(overlapping, "no reconstruction overlapped NPU compute");
        // Serial mode shows CPU-lane work instead.
        let (_, tl_serial) = crate::sched::simulate_traced(&vr, ExecMode::VrDannSerial, &cfg);
        assert!(tl_serial.lane_busy_ns(crate::Lane::Cpu) > 0.0);
        assert_eq!(tl_serial.lane_busy_ns(crate::Lane::Agent), 0.0);
        // Untraced runs record nothing.
        let plain = simulate(&vr, ExecMode::VrDannSerial, &cfg);
        assert!(plain.cpu_recon_ns > 0.0);
    }

    #[test]
    fn decode_bound_never_exceeded() {
        let (vr, favos) = vr_trace();
        let cfg = SimConfig::default();
        for (trace, mode) in [
            (&favos, ExecMode::InOrder),
            (&vr, ExecMode::VrDannParallel(ParallelOptions::default())),
        ] {
            let r = simulate(trace, mode, &cfg);
            // Total time is at least the decoder stream time.
            let (ready, _) = decode_ready(trace, &cfg, None);
            assert!(r.total_ns >= *ready.last().unwrap() - 1e-6);
            assert!(r.fps > 0.0);
        }
    }

    #[test]
    fn more_tmp_b_buffers_never_hurt() {
        let (vr, _) = vr_trace();
        let cfg = SimConfig::default();
        let run = |n: usize| {
            simulate(
                &vr,
                ExecMode::VrDannParallel(ParallelOptions {
                    tmp_b_buffers: Some(n),
                    ..ParallelOptions::default()
                }),
                &cfg,
            )
            .total_ns
        };
        let one = run(1);
        let three = run(3);
        let eight = run(8);
        assert!(three <= one);
        assert!(eight <= three + 1.0);
    }
}
