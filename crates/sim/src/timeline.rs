//! Execution timelines: the data behind the paper's Fig. 7.
//!
//! [`crate::simulate_traced`] records what every hardware unit was doing and
//! when; [`Timeline::render_gantt`] draws the classic four-lane picture —
//! decoder, NPU, agent unit, CPU — that makes the schedules comparable at a
//! glance: FAVOS's wall of NN-L, VR-DANN-serial's switch/reconstruction
//! bubbles, and VR-DANN-parallel's reconstruction hidden under NPU compute.

/// The hardware unit a span occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lane {
    /// The video decoder.
    Decoder,
    /// The NPU.
    Npu,
    /// The VR-DANN agent unit (hardware reconstruction).
    Agent,
    /// The host CPU (software reconstruction in VR-DANN-serial).
    Cpu,
}

impl Lane {
    /// Display name of the lane.
    pub fn name(self) -> &'static str {
        match self {
            Lane::Decoder => "decoder",
            Lane::Npu => "NPU",
            Lane::Agent => "agent",
            Lane::Cpu => "CPU",
        }
    }
}

/// What kind of work a span represents (sets the Gantt glyph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Full pixel decode of a frame.
    DecodeFull,
    /// Motion-vector-only parse of a B-frame.
    DecodeMv,
    /// Large-network inference.
    NnL,
    /// NN-S refinement inference.
    NnS,
    /// Head-only inference on warped backbone features (feature-space
    /// propagation B-frames).
    Head,
    /// FlowNet inference + warp.
    Flow,
    /// Model switch bubble.
    Switch,
    /// B-frame reconstruction.
    Recon,
}

impl SpanKind {
    /// One-character glyph used in the Gantt chart.
    pub fn glyph(self) -> char {
        match self {
            SpanKind::DecodeFull => 'D',
            SpanKind::DecodeMv => 'm',
            SpanKind::NnL => 'L',
            SpanKind::NnS => 'S',
            SpanKind::Head => 'H',
            SpanKind::Flow => 'F',
            SpanKind::Switch => 'x',
            SpanKind::Recon => 'r',
        }
    }
}

/// One busy interval of one unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Which unit.
    pub lane: Lane,
    /// Work kind.
    pub kind: SpanKind,
    /// Start time in nanoseconds.
    pub start_ns: f64,
    /// End time in nanoseconds.
    pub end_ns: f64,
    /// Display index of the frame involved, if any.
    pub frame: Option<u32>,
}

/// A recorded execution timeline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    /// All recorded spans, in recording order.
    pub spans: Vec<Span>,
}

impl Timeline {
    /// Records a span (zero-length spans are dropped).
    pub fn record(
        &mut self,
        lane: Lane,
        kind: SpanKind,
        start_ns: f64,
        end_ns: f64,
        frame: Option<u32>,
    ) {
        if end_ns > start_ns {
            self.spans.push(Span {
                lane,
                kind,
                start_ns,
                end_ns,
                frame,
            });
        }
    }

    /// End of the last span (0 when empty).
    pub fn end_ns(&self) -> f64 {
        self.spans.iter().fold(0.0, |acc, s| acc.max(s.end_ns))
    }

    /// Total busy time of one lane.
    pub fn lane_busy_ns(&self, lane: Lane) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.lane == lane)
            .map(|s| s.end_ns - s.start_ns)
            .sum()
    }

    /// Renders a four-lane ASCII Gantt chart, `width` characters wide.
    /// Glyphs: `D` full decode, `m` MV-only parse, `L` NN-L, `S` NN-S,
    /// `H` head-only (feature propagation), `F` FlowNet, `x` model
    /// switch, `r` reconstruction, `.` idle.
    ///
    /// # Panics
    /// Panics if `width` is zero.
    pub fn render_gantt(&self, width: usize) -> String {
        assert!(width > 0, "gantt width must be non-zero");
        let total = self.end_ns().max(1.0);
        let mut out = String::new();
        for lane in [Lane::Decoder, Lane::Npu, Lane::Agent, Lane::Cpu] {
            let mut row = vec!['.'; width];
            let mut any = false;
            for s in self.spans.iter().filter(|s| s.lane == lane) {
                any = true;
                let a = ((s.start_ns / total) * width as f64).floor() as usize;
                let b = ((s.end_ns / total) * width as f64).ceil() as usize;
                for cell in row
                    .iter_mut()
                    .take(b.clamp(a + 1, width))
                    .skip(a.min(width - 1))
                {
                    *cell = s.kind.glyph();
                }
            }
            if any || lane == Lane::Npu || lane == Lane::Decoder {
                out.push_str(&format!("{:>7} |", lane.name()));
                out.extend(row);
                out.push_str(&format!(
                    "| {:6.2} ms busy\n",
                    self.lane_busy_ns(lane) / 1e6
                ));
            }
        }
        out.push_str(&format!(
            "total {:.2} ms   [D full decode, m MV parse, L NN-L, S NN-S, H head, F flow, x switch, r recon, . idle]\n",
            total / 1e6
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_measure() {
        let mut t = Timeline::default();
        t.record(Lane::Npu, SpanKind::NnL, 0.0, 100.0, Some(0));
        t.record(Lane::Npu, SpanKind::Switch, 100.0, 120.0, None);
        t.record(Lane::Agent, SpanKind::Recon, 50.0, 70.0, Some(1));
        // Zero-length spans are dropped.
        t.record(Lane::Cpu, SpanKind::Recon, 10.0, 10.0, None);
        assert_eq!(t.spans.len(), 3);
        assert_eq!(t.end_ns(), 120.0);
        assert_eq!(t.lane_busy_ns(Lane::Npu), 120.0);
        assert_eq!(t.lane_busy_ns(Lane::Agent), 20.0);
        assert_eq!(t.lane_busy_ns(Lane::Cpu), 0.0);
    }

    #[test]
    fn gantt_renders_glyphs_in_order() {
        let mut t = Timeline::default();
        t.record(Lane::Npu, SpanKind::NnL, 0.0, 50.0, Some(0));
        t.record(Lane::Npu, SpanKind::NnS, 50.0, 100.0, Some(1));
        let g = t.render_gantt(20);
        let npu_row = g.lines().find(|l| l.contains("NPU")).unwrap();
        let cells: String = npu_row.chars().filter(|c| "LS.".contains(*c)).collect();
        // First half L, second half S.
        assert!(cells.starts_with('L'));
        assert!(cells.trim_end_matches('.').ends_with('S'));
        assert!(g.contains("total"));
    }
}
