//! Per-frame DRAM traffic accounting (the inputs to Fig. 14).
//!
//! Constants live in [`CostConfig`]; this module
//! applies them to a trace frame. The B-frame *segmentation* traffic (the
//! coalesced or scattered reference fetches) is measured by the agent-unit
//! model at simulation time and added there — this module covers the
//! statically known part.

use crate::config::CostConfig;
use crate::report::TrafficBreakdown;
use vr_dann::{ComputeKind, TraceFrame};
use vrd_nn::{FEATURE_CHANNELS, FEATURE_STRIDE, NNL_HEAD_FRACTION};

/// Statically known traffic of one frame (everything except the agent
/// unit's measured reconstruction fetches).
pub fn frame_traffic(
    f: &TraceFrame,
    width: usize,
    height: usize,
    cost: &CostConfig,
) -> TrafficBreakdown {
    let px = (width * height) as u64;
    let mut t = TrafficBreakdown {
        bitstream: f.bitstream_bytes as u64,
        ..TrafficBreakdown::default()
    };
    if f.full_decode {
        // The decoder writes the raw 24-bit frame to DRAM.
        t.activations += 3 * px;
    }
    match &f.kind {
        ComputeKind::NnL { .. } => {
            t.weights += (cost.nnl_weight_bytes_per_pixel * px as f64) as u64;
            // Raw frame read back + spilled feature maps + result write.
            t.activations += 3 * px + (cost.nnl_activation_bytes_per_pixel * px as f64) as u64;
            t.seg += px / 8;
        }
        ComputeKind::FlowWarp { .. } => {
            // FlowNet: two raw frames in, a flow field out, plus the warp's
            // mask read/write. Weights/activations scaled to FlowNet's
            // share of the large network.
            t.weights += (0.5 * cost.nnl_weight_bytes_per_pixel * px as f64) as u64;
            t.activations +=
                6 * px + (0.6 * cost.nnl_activation_bytes_per_pixel * px as f64) as u64;
            t.seg += px / 4;
        }
        ComputeKind::NnSRefine { mvs, .. } => {
            t.weights += cost.nns_weight_bytes as u64;
            t.mv += (mvs.len() * cost.mv_record_bytes) as u64;
            // Sandwich read (two 1-bit masks + the 2-bit plane) and the
            // refined 1-bit result write.
            t.activations += px / 8 * 2 + px / 4;
            t.seg += px / 8;
        }
        ComputeKind::BoxShift => {
            // A handful of rectangle coordinates — negligible.
        }
        ComputeKind::FeatHead { mvs, .. } => {
            // Feature propagation: the head's share of the large-model
            // weights, the MV records driving the warp, and the feature
            // maps themselves — read up to two cached anchor maps, write
            // the warped one (f32 cells at the backbone's stride), then
            // the head's activation spill and the 1-bit result.
            let feat_bytes = (px as f64 / (FEATURE_STRIDE * FEATURE_STRIDE) as f64
                * FEATURE_CHANNELS as f64
                * 4.0) as u64;
            t.weights += (NNL_HEAD_FRACTION * cost.nnl_weight_bytes_per_pixel * px as f64) as u64;
            t.mv += (mvs.len() * cost.mv_record_bytes) as u64;
            t.activations += 3 * feat_bytes
                + (NNL_HEAD_FRACTION * cost.nnl_activation_bytes_per_pixel * px as f64) as u64;
            t.seg += px / 8;
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrd_codec::FrameType;

    fn frame(kind: ComputeKind, full_decode: bool) -> TraceFrame {
        TraceFrame {
            display: 0,
            ftype: FrameType::I,
            kind,
            full_decode,
            bitstream_bytes: 1000,
        }
    }

    #[test]
    fn nnl_frame_dominated_by_weights_and_activations() {
        let cost = CostConfig::default();
        let t = frame_traffic(&frame(ComputeKind::NnL { ops: 1 }, true), 854, 480, &cost);
        let px = 854 * 480;
        assert_eq!(t.weights, (39.0 * px as f64) as u64);
        assert!(t.activations > t.weights); // 60 B/px spill + raw frames
        assert_eq!(t.bitstream, 1000);
        assert!(t.total() > 30_000_000, "NN-L frame ~40 MB: {}", t.total());
    }

    #[test]
    fn b_frame_traffic_is_tiny_by_comparison() {
        let cost = CostConfig::default();
        let nnl = frame_traffic(&frame(ComputeKind::NnL { ops: 1 }, true), 854, 480, &cost);
        let b = frame_traffic(
            &frame(
                ComputeKind::NnSRefine {
                    ops: 1,
                    mvs: vec![],
                },
                false,
            ),
            854,
            480,
            &cost,
        );
        assert!(
            (b.total() as f64) < 0.02 * nnl.total() as f64,
            "B-frame {} vs NN-L {}",
            b.total(),
            nnl.total()
        );
        // No raw pixels for B-frames: that is the headline saving.
        assert_eq!(b.weights, 1024);
    }

    #[test]
    fn feat_head_sits_between_nns_and_nnl() {
        let cost = CostConfig::default();
        let (w, h) = (854, 480);
        let nnl = frame_traffic(&frame(ComputeKind::NnL { ops: 1 }, true), w, h, &cost);
        let nns = frame_traffic(
            &frame(
                ComputeKind::NnSRefine {
                    ops: 1,
                    mvs: vec![],
                },
                false,
            ),
            w,
            h,
            &cost,
        );
        let head = frame_traffic(
            &frame(
                ComputeKind::FeatHead {
                    ops: 1,
                    mvs: vec![],
                },
                false,
            ),
            w,
            h,
            &cost,
        );
        // The head moves a quarter of the weights and real feature maps —
        // far more than NN-S, far less than a full NN-L pass.
        assert!(head.total() > 5 * nns.total());
        assert!(head.total() < nnl.total() / 2);
        // No raw pixels: propagation never decodes B-frame pixels.
        let px = (w * h) as u64;
        assert_eq!(
            head.weights,
            (NNL_HEAD_FRACTION * cost.nnl_weight_bytes_per_pixel * px as f64) as u64
        );
    }

    #[test]
    fn box_shift_costs_only_bitstream() {
        let cost = CostConfig::default();
        let t = frame_traffic(&frame(ComputeKind::BoxShift, true), 160, 96, &cost);
        // Full decode still writes the raw frame.
        assert_eq!(t.total(), 1000 + 3 * 160 * 96);
    }
}
