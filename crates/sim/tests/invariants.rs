//! Architecture invariants that must hold on *every* suite sequence, not
//! just the calibration averages: scheme ordering, accounting consistency
//! and queue bounds.

use vr_dann::baselines::{encode_default, run_favos};
use vr_dann::{TrainTask, VrDann, VrDannConfig};
use vrd_sim::{simulate, ExecMode, ParallelOptions, SimConfig, SimReport};
use vrd_video::davis::{davis_train_suite, davis_val_suite, SuiteConfig};

fn reports_for_suite() -> Vec<(String, f64, SimReport, SimReport, SimReport)> {
    let cfg = SuiteConfig::tiny();
    let model = VrDann::train(
        &davis_train_suite(&cfg, 2),
        TrainTask::Segmentation,
        VrDannConfig {
            nns_hidden: 4,
            ..VrDannConfig::default()
        },
    )
    .expect("training succeeds");
    let sim = SimConfig::default();
    davis_val_suite(&cfg)
        .iter()
        .take(8)
        .map(|seq| {
            let encoded = model.encode(seq).unwrap();
            let vr = model.run_segmentation(seq, &encoded).unwrap();
            let favos = run_favos(seq, &encode_default(seq).unwrap(), 1);
            (
                seq.name.clone(),
                encoded.stats.b_ratio(),
                simulate(&favos.trace, ExecMode::InOrder, &sim),
                simulate(&vr.trace, ExecMode::VrDannSerial, &sim),
                simulate(
                    &vr.trace,
                    ExecMode::VrDannParallel(ParallelOptions::default()),
                    &sim,
                ),
            )
        })
        .collect()
}

#[test]
fn scheme_ordering_holds_on_every_video() {
    for (name, b_ratio, favos, serial, parallel) in reports_for_suite() {
        assert!(
            parallel.total_ns <= serial.total_ns,
            "{name}: parallel slower than serial"
        );
        assert!(
            parallel.total_ns < favos.total_ns,
            "{name}: parallel slower than FAVOS"
        );
        // VR-DANN-serial is NOT guaranteed to beat FAVOS at this tiny test
        // resolution: the model-switch cost is resolution-independent
        // (buffer refill + kernel swap) while the NN-L savings shrink with
        // the frame area, so the switch bubbles can dominate. The suite- and
        // HD-scale wins are asserted by the release calibration tests; here
        // we assert the structural facts instead: serial pays strictly more
        // switch time than the lagged-switching architecture, on every
        // video.
        let _ = b_ratio;
        assert!(
            serial.switch_ns > parallel.switch_ns,
            "{name}: lagged switching did not cut switch time"
        );
        assert!(
            parallel.energy.total_mj() <= serial.energy.total_mj(),
            "{name}: parallel energy above serial"
        );
        assert!(
            parallel.energy.total_mj() < favos.energy.total_mj(),
            "{name}: parallel energy above FAVOS"
        );
    }
}

#[test]
fn accounting_is_internally_consistent() {
    let sim = SimConfig::default();
    for (name, _b_ratio, favos, serial, parallel) in reports_for_suite() {
        for r in [&favos, &serial, &parallel] {
            // Busy + switch + stalls can never exceed the wall clock.
            assert!(
                r.npu_busy_ns + r.switch_ns <= r.total_ns + 1.0,
                "{name}: NPU busy exceeds total"
            );
            // fps consistent with total time.
            let fps = r.frames as f64 / (r.total_ns / 1e9);
            assert!((fps - r.fps).abs() < 1e-6, "{name}: fps mismatch");
            // Energy components are non-negative and sum to the total.
            let e = &r.energy;
            for part in [
                e.npu_mj,
                e.dram_mj,
                e.decoder_mj,
                e.agent_mj,
                e.cpu_mj,
                e.static_mj,
            ] {
                assert!(part >= 0.0, "{name}: negative energy component");
            }
            assert!(
                (e.total_mj()
                    - (e.npu_mj + e.dram_mj + e.decoder_mj + e.agent_mj + e.cpu_mj + e.static_mj))
                    .abs()
                    < 1e-9
            );
        }
        // Queue bound holds.
        assert!(parallel.max_b_q_occupancy <= sim.agent.b_q_entries);
        // Only serial pays CPU reconstruction; only parallel uses the agent.
        assert_eq!(favos.cpu_recon_ns, 0.0, "{name}");
        assert!(serial.cpu_recon_ns > 0.0, "{name}");
        assert_eq!(serial.energy.agent_mj, 0.0, "{name}");
        assert!(parallel.energy.agent_mj > 0.0, "{name}");
    }
}

#[test]
fn parallel_switches_bounded_by_queue_drains() {
    let sim = SimConfig::default();
    for (name, _b_ratio, _favos, serial, parallel) in reports_for_suite() {
        // Lagged switching: far fewer switches than the serial decode-order
        // flow, and at most two per b_Q drain (in plus out).
        assert!(
            parallel.switches <= serial.switches,
            "{name}: lagged switching did not reduce switches"
        );
        let drains = parallel
            .max_b_q_occupancy
            .max(1)
            .div_ceil(sim.agent.b_q_entries)
            .max(1);
        let _ = drains; // at least one drain happened if any B-frames exist
        assert!(parallel.switches >= 1, "{name}: no switches at all");
    }
}
