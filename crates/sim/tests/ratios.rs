//! Headline ratio calibration against Fig. 13's reported factors.
use vr_dann::baselines::*;
use vr_dann::{TrainTask, VrDann, VrDannConfig};
use vrd_sim::{simulate, ExecMode, ParallelOptions, SimConfig};
use vrd_video::davis::{davis_train_suite, davis_val_suite, SuiteConfig};

#[test]
fn fig13_performance_and_energy_ratios() {
    let cfg = SuiteConfig::default();
    let train = davis_train_suite(&cfg, 4);
    let model = VrDann::train(&train, TrainTask::Segmentation, VrDannConfig::default()).unwrap();
    let sim = SimConfig::default();
    let suite = davis_val_suite(&cfg);
    let (mut po, mut pf, mut pd, mut ps, mut eo, mut ef, mut ed, mut es) =
        (0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
    let n = suite.len() as f64;
    for seq in &suite {
        let encoded = model.encode(seq).unwrap();
        let favos = simulate(&run_favos(seq, &encoded, 1).trace, ExecMode::InOrder, &sim);
        let osvos = simulate(&run_osvos(seq, &encoded, 1).trace, ExecMode::InOrder, &sim);
        let dff = simulate(
            &run_dff(seq, &encoded, DFF_KEY_INTERVAL, 1).trace,
            ExecMode::InOrder,
            &sim,
        );
        let vr = model.run_segmentation(seq, &encoded).unwrap();
        let serial = simulate(&vr.trace, ExecMode::VrDannSerial, &sim);
        let par = simulate(
            &vr.trace,
            ExecMode::VrDannParallel(ParallelOptions::default()),
            &sim,
        );
        po += osvos.total_ns / par.total_ns;
        pf += favos.total_ns / par.total_ns;
        pd += dff.total_ns / par.total_ns;
        ps += serial.total_ns / par.total_ns;
        eo += osvos.energy.total_mj() / par.energy.total_mj();
        ef += favos.energy.total_mj() / par.energy.total_mj();
        ed += dff.energy.total_mj() / par.energy.total_mj();
        es += serial.energy.total_mj() / par.energy.total_mj();
    }
    println!(
        "perf  vs osvos {:.2}x favos {:.2}x dff {:.2}x serial {:.2}x",
        po / n,
        pf / n,
        pd / n,
        ps / n
    );
    println!(
        "energy vs osvos {:.2}x favos {:.2}x dff {:.2}x serial {:.2}x",
        eo / n,
        ef / n,
        ed / n,
        es / n
    );
    // Paper: 5.7x / 2.9x / 2.2x / 1.5x perf; 4.3x / 2.1x / 1.7x / 1.1x energy.
    assert!(
        pf / n > 1.8 && pf / n < 4.0,
        "favos perf ratio {:.2}",
        pf / n
    );
    assert!(
        po / n > 1.5 * pf / n * 0.9,
        "osvos should be ~2x favos ratio"
    );
    assert!(pd / n > 1.2 && pd / n < pf / n, "dff ratio {:.2}", pd / n);
    assert!(ps / n > 1.2 && ps / n < 2.2, "serial ratio {:.2}", ps / n);
    assert!(ef / n > 1.5, "favos energy ratio {:.2}", ef / n);
    assert!(
        ed / n > 1.2 && ed / n < ef / n,
        "dff energy ratio {:.2}",
        ed / n
    );
}
