//! `vrddump` — writes a suite sequence to disk as PGM images for visual
//! inspection: raw frames, ground-truth masks and boundary overlays.
//!
//! ```text
//! cargo run -p vrd-video --bin vrddump -- [video] [out_dir] [--quick]
//! ```

use std::fs;
use std::path::PathBuf;
use vrd_video::davis::{davis_sequence, davis_val_names, SuiteConfig};
use vrd_video::pgm::{frame_to_pgm, mask_to_pgm, overlay};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = args.iter().filter(|a| !a.starts_with("--"));
    let name = positional.next().cloned().unwrap_or_else(|| "cows".into());
    let out_dir = PathBuf::from(
        positional
            .next()
            .cloned()
            .unwrap_or_else(|| format!("vrddump-{name}")),
    );
    if !davis_val_names().contains(&name.as_str()) {
        return Err(format!(
            "unknown sequence {name:?}; choose from: {}",
            davis_val_names().join(", ")
        )
        .into());
    }
    let cfg = if args.iter().any(|a| a == "--quick") {
        SuiteConfig::tiny()
    } else {
        SuiteConfig::default()
    };
    let seq = davis_sequence(&name, &cfg)?;
    fs::create_dir_all(&out_dir)?;
    for (t, (frame, mask)) in seq.frames.iter().zip(&seq.gt_masks).enumerate() {
        fs::write(
            out_dir.join(format!("{t:03}_frame.pgm")),
            frame_to_pgm(frame),
        )?;
        fs::write(out_dir.join(format!("{t:03}_mask.pgm")), mask_to_pgm(mask))?;
        fs::write(
            out_dir.join(format!("{t:03}_overlay.pgm")),
            frame_to_pgm(&overlay(frame, mask)),
        )?;
    }
    println!(
        "wrote {} frames of '{}' ({}x{}) to {}",
        seq.len(),
        name,
        seq.width(),
        seq.height(),
        out_dir.display()
    );
    Ok(())
}
