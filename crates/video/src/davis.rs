//! The DAVIS-like segmentation benchmark suite.
//!
//! DAVIS-2016 itself (50 natural videos) is not redistributable here, so the
//! suite recreates its *validation split by name*: the 20 sequences the paper
//! plots in Fig. 9, each given a motion/deformation profile matching the
//! qualitative description of the real sequence (e.g. `parkour` is very fast,
//! `breakdance` deforms dramatically, `cows` is large and slow). Accuracy is
//! measured against pixel-exact synthetic ground truth. See `DESIGN.md` §2
//! for why this substitution preserves the paper's behaviour.

use crate::geom::{Point, Vec2};
use crate::object::{Deformation, SceneObject, Shape, Trajectory};
use crate::scene::Scene;
use crate::sequence::Sequence;
use crate::texture::Texture;

/// Shared knobs for suite generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuiteConfig {
    /// Frame width in pixels (must be a multiple of 16 for both codec
    /// profiles).
    pub width: usize,
    /// Frame height in pixels (must be a multiple of 16).
    pub height: usize,
    /// Frames per sequence.
    pub frames: usize,
    /// Master seed; every sequence derives its own sub-seed from it.
    pub seed: u64,
}

impl Default for SuiteConfig {
    /// 160×96 @ 48 frames: large enough for 8/16-pixel macro-blocks to be
    /// meaningful, small enough to run the full 20-video suite in seconds.
    fn default() -> Self {
        Self {
            width: 160,
            height: 96,
            frames: 48,
            seed: 0x5eed_da15,
        }
    }
}

impl SuiteConfig {
    /// A reduced configuration for fast unit/property tests.
    pub fn tiny() -> Self {
        Self {
            width: 64,
            height: 48,
            frames: 16,
            seed: 0x7e57,
        }
    }

    /// Validates that the canvas is compatible with both codec profiles.
    ///
    /// # Errors
    /// Returns a message if a dimension is zero or not a multiple of 16.
    pub fn validate(&self) -> Result<(), String> {
        if self.width == 0 || self.height == 0 || self.frames == 0 {
            return Err("width, height and frames must be non-zero".into());
        }
        if !self.width.is_multiple_of(16) || !self.height.is_multiple_of(16) {
            return Err(format!(
                "dimensions {}x{} must be multiples of 16 (largest macro-block)",
                self.width, self.height
            ));
        }
        Ok(())
    }
}

/// Trajectory archetype for a DAVIS-like sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Traj {
    Bounce,
    Linear,
    /// Vertical sinusoid: (relative amplitude, period in frames).
    Sin(f32, f32),
    Circular,
}

/// One row of the suite definition table.
struct Spec {
    name: &'static str,
    /// Object radius as a fraction of the frame height.
    rel_size: f32,
    /// Speed in pixels/frame at the 160-pixel-wide reference canvas.
    speed: f32,
    traj: Traj,
    deform: Deformation,
    /// Camera pan in reference pixels/frame.
    pan: f32,
    /// Rigid box silhouette (vehicles) instead of a lobed blob.
    boxy: bool,
}

/// The 20 DAVIS-2016 validation sequence profiles plotted in the paper's
/// Fig. 9, ordered as in the dataset.
const DAVIS_VAL: &[Spec] = &[
    Spec {
        name: "blackswan",
        rel_size: 0.26,
        speed: 0.6,
        traj: Traj::Sin(0.02, 24.0),
        deform: Deformation::None,
        pan: 0.1,
        boxy: false,
    },
    Spec {
        name: "bmx-trees",
        rel_size: 0.17,
        speed: 2.6,
        traj: Traj::Bounce,
        deform: Deformation::PulseSpin {
            amp: 0.18,
            period: 12.0,
            omega: 0.08,
        },
        pan: 0.4,
        boxy: false,
    },
    Spec {
        name: "breakdance",
        rel_size: 0.23,
        speed: 1.8,
        traj: Traj::Bounce,
        deform: Deformation::PulseSpin {
            amp: 0.28,
            period: 10.0,
            omega: 0.12,
        },
        pan: 0.0,
        boxy: false,
    },
    Spec {
        name: "camel",
        rel_size: 0.30,
        speed: 0.5,
        traj: Traj::Linear,
        deform: Deformation::None,
        pan: 0.1,
        boxy: false,
    },
    Spec {
        name: "car-roundabout",
        rel_size: 0.21,
        speed: 1.6,
        traj: Traj::Circular,
        deform: Deformation::None,
        pan: 0.0,
        boxy: true,
    },
    Spec {
        name: "car-shadow",
        rel_size: 0.21,
        speed: 1.4,
        traj: Traj::Linear,
        deform: Deformation::None,
        pan: 0.2,
        boxy: true,
    },
    Spec {
        name: "cows",
        rel_size: 0.33,
        speed: 0.4,
        traj: Traj::Sin(0.015, 30.0),
        deform: Deformation::None,
        pan: 0.0,
        boxy: false,
    },
    Spec {
        name: "dance-twirl",
        rel_size: 0.23,
        speed: 1.5,
        traj: Traj::Bounce,
        deform: Deformation::Spin { omega: 0.1 },
        pan: 0.0,
        boxy: false,
    },
    Spec {
        name: "dog",
        rel_size: 0.21,
        speed: 1.2,
        traj: Traj::Sin(0.04, 14.0),
        deform: Deformation::Pulse {
            amp: 0.1,
            period: 12.0,
        },
        pan: 0.1,
        boxy: false,
    },
    Spec {
        name: "drift-chicane",
        rel_size: 0.17,
        speed: 2.8,
        traj: Traj::Sin(0.08, 18.0),
        deform: Deformation::None,
        pan: 0.3,
        boxy: true,
    },
    Spec {
        name: "drift-straight",
        rel_size: 0.17,
        speed: 3.0,
        traj: Traj::Linear,
        deform: Deformation::None,
        pan: 0.3,
        boxy: true,
    },
    Spec {
        name: "goat",
        rel_size: 0.25,
        speed: 0.7,
        traj: Traj::Linear,
        deform: Deformation::None,
        pan: 0.1,
        boxy: false,
    },
    Spec {
        name: "horsejump-high",
        rel_size: 0.21,
        speed: 2.2,
        traj: Traj::Sin(0.1, 16.0),
        deform: Deformation::Pulse {
            amp: 0.12,
            period: 16.0,
        },
        pan: 0.2,
        boxy: false,
    },
    Spec {
        name: "kite-surf",
        rel_size: 0.13,
        speed: 1.6,
        traj: Traj::Sin(0.05, 12.0),
        deform: Deformation::None,
        pan: 0.2,
        boxy: false,
    },
    Spec {
        name: "libby",
        rel_size: 0.12,
        speed: 3.3,
        traj: Traj::Bounce,
        deform: Deformation::Pulse {
            amp: 0.12,
            period: 8.0,
        },
        pan: 0.1,
        boxy: false,
    },
    Spec {
        name: "motocross-jump",
        rel_size: 0.19,
        speed: 2.9,
        traj: Traj::Sin(0.12, 14.0),
        deform: Deformation::PulseSpin {
            amp: 0.14,
            period: 12.0,
            omega: 0.06,
        },
        pan: 0.3,
        boxy: false,
    },
    Spec {
        name: "paragliding-launch",
        rel_size: 0.13,
        speed: 0.8,
        traj: Traj::Linear,
        deform: Deformation::None,
        pan: 0.1,
        boxy: false,
    },
    Spec {
        name: "parkour",
        rel_size: 0.15,
        speed: 3.6,
        traj: Traj::Bounce,
        deform: Deformation::Pulse {
            amp: 0.15,
            period: 6.0,
        },
        pan: 0.3,
        boxy: false,
    },
    Spec {
        name: "scooter-black",
        rel_size: 0.19,
        speed: 1.5,
        traj: Traj::Linear,
        deform: Deformation::None,
        pan: 0.2,
        boxy: true,
    },
    Spec {
        name: "soapbox",
        rel_size: 0.21,
        speed: 1.9,
        traj: Traj::Sin(0.05, 20.0),
        deform: Deformation::None,
        pan: 0.2,
        boxy: true,
    },
];

/// The names of the 20 validation sequences in suite order.
pub fn davis_val_names() -> Vec<&'static str> {
    DAVIS_VAL.iter().map(|s| s.name).collect()
}

fn build_scene(spec: &Spec, cfg: &SuiteConfig, salt: u64) -> Scene {
    let w = cfg.width as f32;
    let h = cfg.height as f32;
    let sx = w / 160.0; // speed scale relative to the reference canvas
    let seed = cfg
        .seed
        .wrapping_mul(0x9e37_79b9)
        .wrapping_add(crate::texture::hash2(
            spec.name.len() as i64,
            salt as i64,
            cfg.seed,
        ));
    let size = spec.rel_size * h;
    let speed = spec.speed * sx;

    // Direction derived from the seed so different seeds give different runs.
    let dir = (seed % 360) as f32 * std::f32::consts::PI / 180.0;
    // Favour horizontal motion (like real footage) but renormalise so the
    // object's speed matches the spec exactly.
    let raw = Vec2::new(dir.cos(), dir.sin() * 0.6);
    let vel = raw.scaled(speed / raw.norm().max(1e-6));
    let start = Point::new(
        w * (0.3 + 0.4 * ((seed >> 8) % 100) as f32 / 100.0),
        h * (0.35 + 0.3 * ((seed >> 16) % 100) as f32 / 100.0),
    );
    let margin = size + 2.0;
    let trajectory = match spec.traj {
        Traj::Bounce => Trajectory::Bounce {
            start,
            vel,
            w,
            h,
            margin: margin.min(w / 3.0).min(h / 3.0),
        },
        Traj::Linear => {
            // Linear motion still must not leave the canvas over a long
            // sequence; a wide bounce box keeps it effectively linear for
            // typical lengths while staying visible.
            let flat = Vec2::new(vel.dx, vel.dy * 0.3);
            Trajectory::Bounce {
                start,
                vel: flat.scaled(speed / flat.norm().max(1e-6)),
                w,
                h,
                margin: margin.min(w / 3.0).min(h / 3.0),
            }
        }
        Traj::Sin(amp, period) => Trajectory::Sinusoid {
            start,
            vel: Vec2::new(speed * dir.cos().signum(), 0.0),
            amp: amp * h,
            period,
        },
        Traj::Circular => Trajectory::Circular {
            center: Point::new(w / 2.0, h / 2.0),
            radius: (h / 2.0 - margin).max(4.0),
            omega: speed / (h / 2.0 - margin).max(4.0),
            phase: (seed % 628) as f32 / 100.0,
        },
    };
    // For sinusoids the horizontal drift can still escape; wrap it in a
    // bounce on x by reusing Bounce when the drift would leave the frame.
    let trajectory = match trajectory {
        Trajectory::Sinusoid {
            start,
            vel,
            amp,
            period,
        } if vel.dx.abs() * cfg.frames as f32 > w - 2.0 * margin => {
            // Too fast to stay on screen: bounce instead, keeping the
            // vertical oscillation approximated by a diagonal velocity.
            Trajectory::Bounce {
                start,
                vel: Vec2::new(vel.dx, 2.0 * amp / period.max(1.0)),
                w,
                h,
                margin: margin.min(w / 3.0).min(h / 3.0),
            }
        }
        t => t,
    };

    let shape = if spec.boxy {
        Shape::Box {
            hw: size,
            hh: size * 0.55,
        }
    } else {
        Shape::Blob {
            r0: size,
            lobes: 3 + (seed % 4) as u32,
            lobe_amp: 0.22,
        }
    };
    let texture = if spec.boxy {
        Texture::Stripes {
            a: 215,
            b: 35,
            period: 4,
        }
    } else {
        Texture::Checker {
            a: 225,
            b: 45,
            cell: 3,
        }
    };
    Scene::new(
        cfg.width,
        cfg.height,
        Texture::Blobs {
            lo: 70,
            hi: 170,
            scale: 11.0,
        },
        seed,
    )
    .with_camera_pan(Vec2::new(spec.pan * sx, 0.0))
    .with_object(SceneObject {
        shape,
        trajectory,
        deformation: spec.deform,
        texture,
        seed: seed ^ 0xa5a5,
    })
}

/// Generates the 20-sequence DAVIS-like validation suite.
///
/// # Panics
/// Panics if `cfg` fails [`SuiteConfig::validate`].
pub fn davis_val_suite(cfg: &SuiteConfig) -> Vec<Sequence> {
    cfg.validate().expect("invalid suite config");
    DAVIS_VAL
        .iter()
        .map(|spec| Sequence::from_scene(spec.name, &build_scene(spec, cfg, 0), cfg.frames))
        .collect()
}

/// Generates a disjoint training suite (different seeds and mixed motion
/// profiles) used to train NN-S, mirroring the paper's use of the DAVIS
/// training split.
///
/// # Panics
/// Panics if `cfg` fails [`SuiteConfig::validate`].
pub fn davis_train_suite(cfg: &SuiteConfig, n_sequences: usize) -> Vec<Sequence> {
    cfg.validate().expect("invalid suite config");
    (0..n_sequences)
        .map(|i| {
            let spec = &DAVIS_VAL[(i * 7 + 3) % DAVIS_VAL.len()];
            let scene = build_scene(spec, cfg, 1000 + i as u64);
            Sequence::from_scene(format!("train-{i:02}-{}", spec.name), &scene, cfg.frames)
        })
        .collect()
}

/// Generates a single named validation sequence (one of
/// [`davis_val_names`]).
///
/// # Errors
/// Returns an error if `name` is not in the suite.
pub fn davis_sequence(name: &str, cfg: &SuiteConfig) -> Result<Sequence, String> {
    cfg.validate()?;
    let spec = DAVIS_VAL
        .iter()
        .find(|s| s.name == name)
        .ok_or_else(|| format!("unknown DAVIS sequence: {name}"))?;
    Ok(Sequence::from_scene(
        spec.name,
        &build_scene(spec, cfg, 0),
        cfg.frames,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::SpeedClass;

    #[test]
    fn twenty_named_sequences() {
        let names = davis_val_names();
        assert_eq!(names.len(), 20);
        assert!(names.contains(&"cows"));
        assert!(names.contains(&"parkour"));
        assert!(names.contains(&"libby"));
    }

    #[test]
    fn suite_generation_is_deterministic_and_grounded() {
        let cfg = SuiteConfig::tiny();
        let a = davis_val_suite(&cfg);
        let b = davis_val_suite(&cfg);
        assert_eq!(a.len(), 20);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.frames, y.frames, "nondeterministic frames for {}", x.name);
            assert_eq!(x.gt_masks, y.gt_masks);
        }
        for seq in &a {
            assert_eq!(seq.len(), cfg.frames);
            // Object must be visible in most frames.
            let visible = seq.gt_masks.iter().filter(|m| m.count_ones() > 10).count();
            assert!(
                visible >= cfg.frames * 3 / 4,
                "{} visible in only {visible}/{} frames",
                seq.name,
                cfg.frames
            );
        }
    }

    #[test]
    fn speed_profiles_match_the_paper() {
        let cfg = SuiteConfig::default();
        let suite = davis_val_suite(&cfg);
        let by_name = |n: &str| suite.iter().find(|s| s.name == n).unwrap();
        assert_eq!(by_name("cows").speed_class(), SpeedClass::Slow);
        assert_eq!(by_name("parkour").speed_class(), SpeedClass::Fast);
        assert_eq!(by_name("libby").speed_class(), SpeedClass::Fast);
        assert!(by_name("breakdance").deformation > 0.3);
        assert_eq!(by_name("camel").deformation, 0.0);
    }

    #[test]
    fn train_suite_differs_from_val() {
        let cfg = SuiteConfig::tiny();
        let train = davis_train_suite(&cfg, 6);
        assert_eq!(train.len(), 6);
        let val = davis_val_suite(&cfg);
        // Training sequences must not be bit-identical to any val sequence.
        for t in &train {
            for v in &val {
                assert_ne!(t.frames, v.frames, "{} duplicates {}", t.name, v.name);
            }
        }
    }

    #[test]
    fn named_lookup_and_validation_errors() {
        let cfg = SuiteConfig::tiny();
        assert!(davis_sequence("cows", &cfg).is_ok());
        assert!(davis_sequence("not-a-video", &cfg).is_err());
        let bad = SuiteConfig {
            width: 100, // not a multiple of 16
            ..cfg
        };
        assert!(bad.validate().is_err());
        assert!(davis_sequence("cows", &bad).is_err());
    }
}
