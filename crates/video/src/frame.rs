//! Luma frame raster. The segmentation rasters ([`crate::mask::SegMask`],
//! [`crate::mask::Seg2Plane`]) are bit-packed and live in [`crate::mask`].
//!
//! The codec and the recognition pipelines operate on single-channel luma
//! frames. The paper's memory-traffic accounting assumes 24-bit colour
//! pixels; that constant lives in the simulator ([`BYTES_PER_RAW_PIXEL`]) so
//! the algorithmic crates can stay single-channel without distorting the
//! DRAM-traffic comparison.

/// Bytes per raw decoded pixel assumed by the traffic model (24-bit colour).
pub const BYTES_PER_RAW_PIXEL: usize = 3;

/// A single-channel 8-bit raster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl Frame {
    /// Creates a black frame of the given dimensions.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "frame dimensions must be non-zero");
        Self {
            width,
            height,
            data: vec![0; width * height],
        }
    }

    /// Wraps an existing pixel buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != width * height` or a dimension is zero.
    pub fn from_vec(width: usize, height: usize, data: Vec<u8>) -> Self {
        assert!(width > 0 && height > 0, "frame dimensions must be non-zero");
        assert_eq!(data.len(), width * height, "pixel buffer size mismatch");
        Self {
            width,
            height,
            data,
        }
    }

    /// Frame width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw pixel slice in row-major order.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Mutable raw pixel slice in row-major order.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Pixel value at `(x, y)`.
    ///
    /// # Panics
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        self.data[y * self.width + x]
    }

    /// Pixel value at `(x, y)`, clamping coordinates into the frame.
    #[inline]
    pub fn get_clamped(&self, x: i32, y: i32) -> u8 {
        let cx = x.clamp(0, self.width as i32 - 1) as usize;
        let cy = y.clamp(0, self.height as i32 - 1) as usize;
        self.data[cy * self.width + cx]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: u8) {
        self.data[y * self.width + x] = v;
    }

    /// Mean absolute difference against another frame of identical size.
    ///
    /// Used by the auto-GOP heuristic to estimate motion intensity.
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    pub fn mean_abs_diff(&self, other: &Frame) -> f64 {
        assert_eq!(self.width, other.width, "frame width mismatch");
        assert_eq!(self.height, other.height, "frame height mismatch");
        let sum: u64 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a as i32 - b as i32).unsigned_abs() as u64)
            .sum();
        sum as f64 / self.data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_and_clamping() {
        let mut f = Frame::new(4, 3);
        f.set(3, 2, 77);
        assert_eq!(f.get(3, 2), 77);
        assert_eq!(f.get_clamped(100, 100), 77);
        assert_eq!(f.get_clamped(-5, -5), f.get(0, 0));
        assert_eq!(f.as_slice().len(), 12);
    }

    #[test]
    #[should_panic(expected = "pixel buffer size mismatch")]
    fn frame_from_vec_validates_len() {
        let _ = Frame::from_vec(4, 3, vec![0; 11]);
    }

    #[test]
    fn frame_mean_abs_diff() {
        let a = Frame::from_vec(2, 2, vec![0, 10, 20, 30]);
        let b = Frame::from_vec(2, 2, vec![10, 10, 10, 10]);
        assert!((a.mean_abs_diff(&b) - (10.0 + 0.0 + 10.0 + 20.0) / 4.0).abs() < 1e-9);
        assert_eq!(a.mean_abs_diff(&a), 0.0);
    }
}
