//! Raster containers: luma frames, binary segmentation masks and the 2-bit
//! segmentation planes VR-DANN reconstructs B-frames into.
//!
//! The codec and the recognition pipelines operate on single-channel luma
//! frames. The paper's memory-traffic accounting assumes 24-bit colour
//! pixels; that constant lives in the simulator ([`BYTES_PER_RAW_PIXEL`]) so
//! the algorithmic crates can stay single-channel without distorting the
//! DRAM-traffic comparison.

use crate::geom::Rect;

/// Bytes per raw decoded pixel assumed by the traffic model (24-bit colour).
pub const BYTES_PER_RAW_PIXEL: usize = 3;

/// A single-channel 8-bit raster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl Frame {
    /// Creates a black frame of the given dimensions.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "frame dimensions must be non-zero");
        Self {
            width,
            height,
            data: vec![0; width * height],
        }
    }

    /// Wraps an existing pixel buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != width * height` or a dimension is zero.
    pub fn from_vec(width: usize, height: usize, data: Vec<u8>) -> Self {
        assert!(width > 0 && height > 0, "frame dimensions must be non-zero");
        assert_eq!(data.len(), width * height, "pixel buffer size mismatch");
        Self {
            width,
            height,
            data,
        }
    }

    /// Frame width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw pixel slice in row-major order.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Mutable raw pixel slice in row-major order.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Pixel value at `(x, y)`.
    ///
    /// # Panics
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        self.data[y * self.width + x]
    }

    /// Pixel value at `(x, y)`, clamping coordinates into the frame.
    #[inline]
    pub fn get_clamped(&self, x: i32, y: i32) -> u8 {
        let cx = x.clamp(0, self.width as i32 - 1) as usize;
        let cy = y.clamp(0, self.height as i32 - 1) as usize;
        self.data[cy * self.width + cx]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: u8) {
        self.data[y * self.width + x] = v;
    }

    /// Mean absolute difference against another frame of identical size.
    ///
    /// Used by the auto-GOP heuristic to estimate motion intensity.
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    pub fn mean_abs_diff(&self, other: &Frame) -> f64 {
        assert_eq!(self.width, other.width, "frame width mismatch");
        assert_eq!(self.height, other.height, "frame height mismatch");
        let sum: u64 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a as i32 - b as i32).unsigned_abs() as u64)
            .sum();
        sum as f64 / self.data.len() as f64
    }
}

/// A binary per-pixel segmentation mask (0 = background, 1 = object).
///
/// This is the currency of the segmentation task: NN-L produces one per
/// I/P frame, and the VR-DANN pipeline produces one per B-frame after
/// refinement. Each pixel conceptually costs **one bit** in the paper's
/// traffic model (see `vrd-sim`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegMask {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl SegMask {
    /// Creates an all-background mask.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "mask dimensions must be non-zero");
        Self {
            width,
            height,
            data: vec![0; width * height],
        }
    }

    /// Wraps an existing 0/1 buffer.
    ///
    /// # Panics
    /// Panics on size mismatch or if any value is not 0 or 1.
    pub fn from_vec(width: usize, height: usize, data: Vec<u8>) -> Self {
        assert_eq!(data.len(), width * height, "mask buffer size mismatch");
        assert!(data.iter().all(|&v| v <= 1), "mask values must be 0 or 1");
        Self {
            width,
            height,
            data,
        }
    }

    /// Mask width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mask height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw 0/1 slice in row-major order.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Mutable raw slice. Values written must stay 0/1.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Value at `(x, y)` (0 or 1).
    ///
    /// # Panics
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        self.data[y * self.width + x]
    }

    /// Value at `(x, y)` with coordinates clamped into the mask.
    #[inline]
    pub fn get_clamped(&self, x: i32, y: i32) -> u8 {
        let cx = x.clamp(0, self.width as i32 - 1) as usize;
        let cy = y.clamp(0, self.height as i32 - 1) as usize;
        self.data[cy * self.width + cx]
    }

    /// Sets the value at `(x, y)` to 0 or 1.
    ///
    /// # Panics
    /// Panics if coordinates are out of bounds or `v > 1`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: u8) {
        assert!(v <= 1, "mask values must be 0 or 1");
        self.data[y * self.width + x] = v;
    }

    /// Number of foreground pixels.
    pub fn count_ones(&self) -> usize {
        self.data.iter().filter(|&&v| v == 1).count()
    }

    /// Tight bounding box of the foreground, or `None` if the mask is empty.
    pub fn bounding_box(&self) -> Option<Rect> {
        let (mut x0, mut y0) = (self.width as i32, self.height as i32);
        let (mut x1, mut y1) = (0i32, 0i32);
        let mut any = false;
        for y in 0..self.height {
            let row = &self.data[y * self.width..(y + 1) * self.width];
            for (x, &v) in row.iter().enumerate() {
                if v == 1 {
                    any = true;
                    x0 = x0.min(x as i32);
                    y0 = y0.min(y as i32);
                    x1 = x1.max(x as i32 + 1);
                    y1 = y1.max(y as i32 + 1);
                }
            }
        }
        any.then(|| Rect::new(x0, y0, x1, y1))
    }

    /// Fills the rectangle (clamped to the mask) with foreground.
    pub fn fill_rect(&mut self, r: Rect) {
        let r = r.clamped(self.width, self.height);
        for y in r.y0..r.y1 {
            for x in r.x0..r.x1 {
                self.data[y as usize * self.width + x as usize] = 1;
            }
        }
    }
}

/// One pixel of a reconstructed (pre-refinement) B-frame segmentation.
///
/// The hardware stores 2 bits per pixel (§IV-D of the paper): `00` black,
/// `01`/`10` gray (the two reference blocks disagreed), `11` white.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
#[repr(u8)]
pub enum Seg2 {
    /// Background in every contributing reference block (`00`).
    #[default]
    Black = 0,
    /// The two reference blocks disagreed (`01`/`10`): the mean filter output
    /// is 0.5.
    Gray = 1,
    /// Foreground in every contributing reference block (`11`).
    White = 2,
}

impl Seg2 {
    /// Mean-filter value in `[0, 1]` used as the NN-S input channel.
    pub fn to_f32(self) -> f32 {
        match self {
            Seg2::Black => 0.0,
            Seg2::Gray => 0.5,
            Seg2::White => 1.0,
        }
    }

    /// Combines the 1-bit values of the (up to two) reference pixels exactly
    /// like the hardware mean filter: `0+0 → Black`, `1+1 → White`, mixed →
    /// `Gray`.
    pub fn from_bits(a: u8, b: u8) -> Self {
        match (a & 1) + (b & 1) {
            0 => Seg2::Black,
            1 => Seg2::Gray,
            _ => Seg2::White,
        }
    }

    /// The number of hardware bits per pixel of this representation.
    pub const BITS: usize = 2;
}

impl std::fmt::Display for Seg2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Seg2::Black => "black",
            Seg2::Gray => "gray",
            Seg2::White => "white",
        };
        f.write_str(s)
    }
}

/// A 2-bit-per-pixel reconstructed segmentation plane (the contents of a
/// `tmp_B` buffer after reconstruction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Seg2Plane {
    width: usize,
    height: usize,
    data: Vec<Seg2>,
}

impl Seg2Plane {
    /// Creates an all-black plane.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "plane dimensions must be non-zero");
        Self {
            width,
            height,
            data: vec![Seg2::Black; width * height],
        }
    }

    /// Plane width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Plane height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw values in row-major order.
    pub fn as_slice(&self) -> &[Seg2] {
        &self.data
    }

    /// Value at `(x, y)`.
    ///
    /// # Panics
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> Seg2 {
        self.data[y * self.width + x]
    }

    /// Sets the value at `(x, y)`.
    ///
    /// # Panics
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: Seg2) {
        self.data[y * self.width + x] = v;
    }

    /// Thresholds the plane into a binary mask (gray counts as foreground
    /// when `gray_is_foreground` is set).
    pub fn to_mask(&self, gray_is_foreground: bool) -> SegMask {
        let data = self
            .data
            .iter()
            .map(|&v| match v {
                Seg2::Black => 0,
                Seg2::Gray => u8::from(gray_is_foreground),
                Seg2::White => 1,
            })
            .collect();
        SegMask::from_vec(self.width, self.height, data)
    }

    /// Storage size in bits (2 bits per pixel, as in the tmp_B buffers).
    pub fn storage_bits(&self) -> usize {
        self.data.len() * Seg2::BITS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_and_clamping() {
        let mut f = Frame::new(4, 3);
        f.set(3, 2, 77);
        assert_eq!(f.get(3, 2), 77);
        assert_eq!(f.get_clamped(100, 100), 77);
        assert_eq!(f.get_clamped(-5, -5), f.get(0, 0));
        assert_eq!(f.as_slice().len(), 12);
    }

    #[test]
    #[should_panic(expected = "pixel buffer size mismatch")]
    fn frame_from_vec_validates_len() {
        let _ = Frame::from_vec(4, 3, vec![0; 11]);
    }

    #[test]
    fn frame_mean_abs_diff() {
        let a = Frame::from_vec(2, 2, vec![0, 10, 20, 30]);
        let b = Frame::from_vec(2, 2, vec![10, 10, 10, 10]);
        assert!((a.mean_abs_diff(&b) - (10.0 + 0.0 + 10.0 + 20.0) / 4.0).abs() < 1e-9);
        assert_eq!(a.mean_abs_diff(&a), 0.0);
    }

    #[test]
    fn mask_counting_and_bbox() {
        let mut m = SegMask::new(8, 6);
        assert_eq!(m.bounding_box(), None);
        m.fill_rect(Rect::new(2, 1, 5, 4));
        assert_eq!(m.count_ones(), 9);
        assert_eq!(m.bounding_box(), Some(Rect::new(2, 1, 5, 4)));
        assert_eq!(m.get(2, 1), 1);
        assert_eq!(m.get(1, 1), 0);
    }

    #[test]
    fn mask_fill_rect_clamps() {
        let mut m = SegMask::new(4, 4);
        m.fill_rect(Rect::new(-2, -2, 2, 2));
        assert_eq!(m.count_ones(), 4);
        assert_eq!(m.bounding_box(), Some(Rect::new(0, 0, 2, 2)));
    }

    #[test]
    #[should_panic(expected = "mask values must be 0 or 1")]
    fn mask_rejects_non_binary() {
        let mut m = SegMask::new(2, 2);
        m.set(0, 0, 2);
    }

    #[test]
    fn seg2_mean_filter_semantics() {
        assert_eq!(Seg2::from_bits(0, 0), Seg2::Black);
        assert_eq!(Seg2::from_bits(1, 0), Seg2::Gray);
        assert_eq!(Seg2::from_bits(0, 1), Seg2::Gray);
        assert_eq!(Seg2::from_bits(1, 1), Seg2::White);
        assert_eq!(Seg2::Gray.to_f32(), 0.5);
    }

    #[test]
    fn seg2_plane_threshold_and_storage() {
        let mut p = Seg2Plane::new(3, 2);
        p.set(0, 0, Seg2::White);
        p.set(1, 0, Seg2::Gray);
        assert_eq!(p.storage_bits(), 12);
        let strict = p.to_mask(false);
        assert_eq!(strict.count_ones(), 1);
        let lenient = p.to_mask(true);
        assert_eq!(lenient.count_ones(), 2);
    }
}
