//! Plane geometry primitives shared across the workspace.
//!
//! Everything here is deliberately small and `Copy`: points, displacement
//! vectors and axis-aligned rectangles are passed around by value throughout
//! the codec, the recognition pipelines and the detection metrics.

/// A position in continuous frame coordinates (x grows right, y grows down).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate in pixels.
    pub x: f32,
    /// Vertical coordinate in pixels.
    pub y: f32,
}

impl Point {
    /// Creates a point from its two coordinates.
    pub fn new(x: f32, y: f32) -> Self {
        Self { x, y }
    }

    /// Returns the point displaced by `v`.
    pub fn offset(self, v: Vec2) -> Self {
        Self::new(self.x + v.dx, self.y + v.dy)
    }

    /// Euclidean distance to `other`.
    pub fn distance(self, other: Point) -> f32 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// A displacement in continuous frame coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// Horizontal displacement in pixels.
    pub dx: f32,
    /// Vertical displacement in pixels.
    pub dy: f32,
}

impl Vec2 {
    /// Creates a displacement from its two components.
    pub fn new(dx: f32, dy: f32) -> Self {
        Self { dx, dy }
    }

    /// Vector length (L2 norm).
    pub fn norm(self) -> f32 {
        (self.dx * self.dx + self.dy * self.dy).sqrt()
    }

    /// Component-wise scaling.
    pub fn scaled(self, k: f32) -> Self {
        Self::new(self.dx * k, self.dy * k)
    }
}

impl std::ops::Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.dx + rhs.dx, self.dy + rhs.dy)
    }
}

/// An axis-aligned rectangle in pixel coordinates.
///
/// `x0/y0` are inclusive, `x1/y1` are exclusive, matching slice-style
/// half-open ranges. An empty rectangle has `x1 <= x0` or `y1 <= y0`.
///
/// Rectangles are the unit of currency for the detection task: ground-truth
/// boxes, Euphrates' propagated boxes and VR-DANN's reconstructed boxes are
/// all `Rect`s compared with [`Rect::iou`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rect {
    /// Left edge (inclusive).
    pub x0: i32,
    /// Top edge (inclusive).
    pub y0: i32,
    /// Right edge (exclusive).
    pub x1: i32,
    /// Bottom edge (exclusive).
    pub y1: i32,
}

impl Rect {
    /// Creates a rectangle from its corner coordinates.
    pub fn new(x0: i32, y0: i32, x1: i32, y1: i32) -> Self {
        Self { x0, y0, x1, y1 }
    }

    /// Creates a rectangle from a corner plus a size.
    pub fn from_size(x0: i32, y0: i32, w: i32, h: i32) -> Self {
        Self::new(x0, y0, x0 + w, y0 + h)
    }

    /// Width in pixels; zero for empty rectangles.
    pub fn width(&self) -> i32 {
        (self.x1 - self.x0).max(0)
    }

    /// Height in pixels; zero for empty rectangles.
    pub fn height(&self) -> i32 {
        (self.y1 - self.y0).max(0)
    }

    /// Area in pixels; zero for empty rectangles.
    pub fn area(&self) -> i64 {
        self.width() as i64 * self.height() as i64
    }

    /// Whether the rectangle covers no pixels.
    pub fn is_empty(&self) -> bool {
        self.area() == 0
    }

    /// Centre of the rectangle in continuous coordinates.
    pub fn center(&self) -> Point {
        Point::new(
            (self.x0 + self.x1) as f32 / 2.0,
            (self.y0 + self.y1) as f32 / 2.0,
        )
    }

    /// Intersection with `other` (possibly empty).
    pub fn intersect(&self, other: &Rect) -> Rect {
        Rect::new(
            self.x0.max(other.x0),
            self.y0.max(other.y0),
            self.x1.min(other.x1),
            self.y1.min(other.y1),
        )
    }

    /// Smallest rectangle containing both `self` and `other`.
    ///
    /// Empty rectangles are treated as the identity element.
    pub fn union(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect::new(
            self.x0.min(other.x0),
            self.y0.min(other.y0),
            self.x1.max(other.x1),
            self.y1.max(other.y1),
        )
    }

    /// Intersection-over-union of the two boxes, in `[0, 1]`.
    ///
    /// Two empty boxes have IoU 0.
    pub fn iou(&self, other: &Rect) -> f64 {
        let inter = self.intersect(other).area();
        let uni = self.area() + other.area() - inter;
        if uni <= 0 {
            0.0
        } else {
            inter as f64 / uni as f64
        }
    }

    /// Translates the rectangle by an integer displacement.
    pub fn shifted(&self, dx: i32, dy: i32) -> Rect {
        Rect::new(self.x0 + dx, self.y0 + dy, self.x1 + dx, self.y1 + dy)
    }

    /// Clamps the rectangle into a `w`×`h` frame.
    pub fn clamped(&self, w: usize, h: usize) -> Rect {
        Rect::new(
            self.x0.clamp(0, w as i32),
            self.y0.clamp(0, h as i32),
            self.x1.clamp(0, w as i32),
            self.y1.clamp(0, h as i32),
        )
    }

    /// Whether the point `(x, y)` falls inside the rectangle.
    pub fn contains(&self, x: i32, y: i32) -> bool {
        x >= self.x0 && x < self.x1 && y >= self.y0 && y < self.y1
    }
}

/// A scored detection box, the output unit of every detection pipeline and
/// the input unit of the mAP metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// The detected bounding box.
    pub rect: Rect,
    /// Confidence score in `[0, 1]`; higher ranks earlier in AP computation.
    pub score: f32,
}

impl Detection {
    /// Creates a detection.
    pub fn new(rect: Rect, score: f32) -> Self {
        Self { rect, score }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_holds_box_and_score() {
        let d = Detection::new(Rect::new(0, 0, 4, 4), 0.9);
        assert_eq!(d.rect.area(), 16);
        assert!((d.score - 0.9).abs() < 1e-6);
    }

    #[test]
    fn point_offset_and_distance() {
        let p = Point::new(1.0, 2.0).offset(Vec2::new(3.0, -2.0));
        assert_eq!(p, Point::new(4.0, 0.0));
        assert!((p.distance(Point::new(0.0, 3.0)) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn vec2_norm_scale_add() {
        let v = Vec2::new(3.0, 4.0);
        assert!((v.norm() - 5.0).abs() < 1e-6);
        let w = v.scaled(2.0) + Vec2::new(-6.0, -8.0);
        assert_eq!(w, Vec2::new(0.0, 0.0));
    }

    #[test]
    fn rect_basic_accessors() {
        let r = Rect::from_size(2, 3, 4, 5);
        assert_eq!(r.width(), 4);
        assert_eq!(r.height(), 5);
        assert_eq!(r.area(), 20);
        assert!(!r.is_empty());
        assert_eq!(r.center(), Point::new(4.0, 5.5));
        assert!(r.contains(2, 3));
        assert!(!r.contains(6, 3));
    }

    #[test]
    fn rect_empty_when_degenerate() {
        assert!(Rect::new(5, 5, 5, 9).is_empty());
        assert!(Rect::new(5, 5, 2, 9).is_empty());
        assert_eq!(Rect::new(5, 5, 2, 9).width(), 0);
    }

    #[test]
    fn rect_intersection_and_union() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 15, 15);
        assert_eq!(a.intersect(&b), Rect::new(5, 5, 10, 10));
        assert_eq!(a.union(&b), Rect::new(0, 0, 15, 15));
        let empty = Rect::default();
        assert_eq!(a.union(&empty), a);
        assert_eq!(empty.union(&b), b);
    }

    #[test]
    fn rect_iou_values() {
        let a = Rect::new(0, 0, 10, 10);
        assert!((a.iou(&a) - 1.0).abs() < 1e-9);
        let disjoint = Rect::new(20, 20, 30, 30);
        assert_eq!(a.iou(&disjoint), 0.0);
        let half = Rect::new(0, 0, 5, 10);
        assert!((a.iou(&half) - 0.5).abs() < 1e-9);
        assert_eq!(Rect::default().iou(&Rect::default()), 0.0);
    }

    #[test]
    fn rect_shift_and_clamp() {
        let r = Rect::new(-4, -4, 4, 4).clamped(10, 10);
        assert_eq!(r, Rect::new(0, 0, 4, 4));
        assert_eq!(r.shifted(2, 3), Rect::new(2, 3, 6, 7));
        let over = Rect::new(5, 5, 20, 20).clamped(10, 8);
        assert_eq!(over, Rect::new(5, 5, 10, 8));
    }
}
