//! # vrd-video — synthetic video with pixel-exact ground truth
//!
//! Substrate crate of the VR-DANN reproduction (MICRO 2020). It generates the
//! raw material every experiment consumes:
//!
//! * [`Frame`] / [`SegMask`] / [`Seg2Plane`] — the raster types shared with
//!   the codec, the recognition pipelines and the simulator;
//! * [`Scene`] / [`SceneObject`] — deterministic procedural scenes with
//!   moving, deforming, textured objects;
//! * [`davis::davis_val_suite`] — the 20-sequence DAVIS-2016-like
//!   segmentation suite (the paper's Fig. 9 videos by name);
//! * [`vid::vid_val_suite`] — the ImageNet-VID-like detection suite grouped
//!   by object speed (the paper's Fig. 11).
//!
//! Real DAVIS / ImageNet-VID footage is replaced by this generator; see
//! `DESIGN.md` §2 for the substitution rationale. Everything is a pure
//! function of the configured seed, so every experiment in the repository is
//! exactly reproducible.
//!
//! ## Example
//!
//! ```
//! use vrd_video::davis::{davis_sequence, SuiteConfig};
//!
//! # fn main() -> Result<(), String> {
//! let cfg = SuiteConfig::tiny();
//! let seq = davis_sequence("cows", &cfg)?;
//! assert_eq!(seq.len(), cfg.frames);
//! // Ground truth is pixel-exact: the mask's bounding box is the GT box.
//! assert_eq!(seq.gt_masks[0].bounding_box(), Some(seq.gt_boxes[0][0]));
//! # Ok(())
//! # }
//! ```

pub mod davis;
pub mod frame;
pub mod geom;
pub mod mask;
pub mod object;
pub mod pgm;
pub mod scene;
pub mod sequence;
pub mod texture;
pub mod vid;

pub use davis::SuiteConfig;
pub use frame::{Frame, BYTES_PER_RAW_PIXEL};
pub use geom::{Detection, Point, Rect, Vec2};
pub use mask::{MaskError, Seg2, Seg2Plane, SegMask, MASK_WORD_BITS};
pub use object::{Deformation, SceneObject, Shape, Trajectory};
pub use pgm::{frame_to_pgm, mask_to_pgm, overlay};
pub use scene::{RenderedFrame, Scene};
pub use sequence::{Sequence, SpeedClass};
pub use texture::Texture;
