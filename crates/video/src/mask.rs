//! Bit-packed segmentation rasters: binary masks and the 2-bit planes
//! VR-DANN reconstructs B-frames into.
//!
//! The paper's whole premise (§III-A1, §IV) is that B-frame segmentation is
//! cheap *mask arithmetic*: 1-bit masks are combined into 2-bit
//! black/gray/white planes by motion-vector replay, and the agent unit
//! coalesces the random reference-block reads into DRAM bursts. This module
//! is the software analogue: [`SegMask`] packs 64 pixels into each `u64`
//! word and [`Seg2Plane`] holds two such bitplanes (white = both references
//! foreground, gray = they disagreed), so block copies, the bi-reference
//! mean filter, thresholding and confusion tallies all become word-parallel
//! bitwise operations instead of byte-per-pixel loops.
//!
//! ## Word layout
//!
//! Rows are padded to a whole number of words (`words_per_row()`), so every
//! row starts word-aligned and row slices are disjoint — per-row parallelism
//! stays race-free. Within a word, bit `j` (LSB-first) is pixel
//! `x = word_index * 64 + j`. Bits past `width` in a row's final word (the
//! *tail bits*) are always zero; every mutating entry point preserves that
//! invariant, which is what lets `count_ones()`-style reductions run over
//! raw words without masking.
//!
//! Per-pixel reference semantics are retained in [`reference`] (and in the
//! scalar `get`/`set` accessors themselves); property tests pin the packed
//! kernels to them bit-for-bit.

use crate::geom::Rect;

/// Pixels per packed mask word.
pub const MASK_WORD_BITS: usize = 64;

/// Validation failure when constructing a mask or plane from raw data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaskError {
    /// The buffer length does not match `width * height`.
    SizeMismatch {
        /// `width * height` of the requested raster.
        expected: usize,
        /// Length of the supplied buffer.
        got: usize,
    },
    /// A value was outside the raster's alphabet (0/1 for masks,
    /// 0/1/2 for planes).
    BadValue {
        /// Row-major index of the offending value.
        index: usize,
        /// The value found there.
        value: u8,
    },
    /// A requested dimension was zero.
    ZeroDimension,
}

impl std::fmt::Display for MaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MaskError::SizeMismatch { expected, got } => {
                write!(f, "buffer size mismatch: expected {expected}, got {got}")
            }
            MaskError::BadValue { index, value } => {
                write!(f, "invalid value {value} at index {index}")
            }
            MaskError::ZeroDimension => write!(f, "dimensions must be non-zero"),
        }
    }
}

impl std::error::Error for MaskError {}

/// The low `n` bits set (`n` may be 64).
#[inline]
fn low_bits(n: usize) -> u64 {
    debug_assert!(n <= 64);
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// One packed 1-bit-per-pixel plane with word-aligned rows.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BitPlane {
    width: usize,
    height: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl BitPlane {
    fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "plane dimensions must be non-zero");
        let words_per_row = width.div_ceil(MASK_WORD_BITS);
        Self {
            width,
            height,
            words_per_row,
            words: vec![0; words_per_row * height],
        }
    }

    #[inline]
    fn get(&self, x: usize, y: usize) -> bool {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        let w = self.words[y * self.words_per_row + x / 64];
        (w >> (x % 64)) & 1 == 1
    }

    #[inline]
    fn set(&mut self, x: usize, y: usize, v: bool) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        let word = &mut self.words[y * self.words_per_row + x / 64];
        let bit = 1u64 << (x % 64);
        if v {
            *word |= bit;
        } else {
            *word &= !bit;
        }
    }

    #[inline]
    fn get_clamped(&self, x: i32, y: i32) -> bool {
        let cx = x.clamp(0, self.width as i32 - 1) as usize;
        let cy = y.clamp(0, self.height as i32 - 1) as usize;
        self.get(cx, cy)
    }

    fn count_ones(&self) -> usize {
        // Tail bits are zero by invariant, so raw popcounts are exact.
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The `n` bits starting at in-range column `x0` of row `y`
    /// (`x0 + n <= width`, `1 <= n <= 64`).
    #[inline]
    fn extract_span(&self, y: usize, x0: usize, n: usize) -> u64 {
        debug_assert!(x0 + n <= self.width && (1..=64).contains(&n));
        let row = &self.words[y * self.words_per_row..(y + 1) * self.words_per_row];
        let w0 = x0 / 64;
        let off = x0 % 64;
        let mut bits = row[w0] >> off;
        if off > 0 && off + n > 64 {
            bits |= row[w0 + 1] << (64 - off);
        }
        bits & low_bits(n)
    }

    /// The `n` bits starting at column `x0` of row `y`, with out-of-range
    /// coordinates clamped to the nearest edge pixel — the word-parallel
    /// equivalent of `n` successive `get_clamped` reads.
    fn extract_row_clamped(&self, y: i32, x0: i32, n: usize) -> u64 {
        debug_assert!((1..=64).contains(&n));
        let y = y.clamp(0, self.height as i32 - 1) as usize;
        let (x0, x1) = (x0 as i64, x0 as i64 + n as i64);
        let w = self.width as i64;
        if x0 >= 0 && x1 <= w {
            return self.extract_span(y, x0 as usize, n);
        }
        let mut bits = 0u64;
        // Positions left of the plane replicate pixel 0.
        if x0 < 0 && self.get(0, y) {
            bits |= low_bits(((-x0) as usize).min(n));
        }
        // The in-range middle, shifted to its offset inside the block row.
        let (s, e) = (x0.max(0), x1.min(w));
        if s < e {
            bits |= self.extract_span(y, s as usize, (e - s) as usize) << (s - x0);
        }
        // Positions right of the plane replicate pixel width-1.
        if x1 > w && self.get(self.width - 1, y) {
            let first = ((w - x0).max(0)) as usize;
            bits |= low_bits(n) & !low_bits(first);
        }
        bits
    }

    /// Overwrites the `n`-bit span at in-range column `x0` of row `y`
    /// (`x0 + n <= width`) with `bits` — a shift-and-merge word move.
    #[inline]
    fn write_span(&mut self, y: usize, x0: usize, n: usize, bits: u64) {
        assert!(
            x0 + n <= self.width && y < self.height,
            "span out of bounds"
        );
        debug_assert!((1..=64).contains(&n));
        let base = y * self.words_per_row;
        let w0 = x0 / 64;
        let off = x0 % 64;
        let m = low_bits(n);
        let b = bits & m;
        self.words[base + w0] = (self.words[base + w0] & !(m << off)) | (b << off);
        if off > 0 && off + n > 64 {
            let spill = 64 - off;
            self.words[base + w0 + 1] = (self.words[base + w0 + 1] & !(m >> spill)) | (b >> spill);
        }
    }

    /// Sets every bit in columns `[x0, x1)` of row `y`.
    fn fill_row_span(&mut self, y: usize, x0: usize, x1: usize) {
        debug_assert!(x0 <= x1 && x1 <= self.width);
        let base = y * self.words_per_row;
        let (w0, w1) = (x0 / 64, x1.div_ceil(64));
        for k in w0..w1 {
            let lo = x0.max(k * 64) - k * 64;
            let hi = x1.min((k + 1) * 64) - k * 64;
            self.words[base + k] |= low_bits(hi) & !low_bits(lo);
        }
    }

    /// Zeroes any bits at or past `width` in each row's final word,
    /// restoring the tail invariant after bulk word writes.
    fn clear_tail_bits(&mut self) {
        let used = self.width % 64;
        if used == 0 {
            return;
        }
        let m = low_bits(used);
        for y in 0..self.height {
            self.words[y * self.words_per_row + self.words_per_row - 1] &= m;
        }
    }
}

/// A binary per-pixel segmentation mask (0 = background, 1 = object),
/// bit-packed 64 pixels per `u64` word.
///
/// This is the currency of the segmentation task: NN-L produces one per
/// I/P frame, and the VR-DANN pipeline produces one per B-frame after
/// refinement. Each pixel costs **one bit** — here literally, matching the
/// paper's traffic model (see `vrd-sim`). See the module docs for the word
/// layout and tail-bit invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegMask {
    plane: BitPlane,
}

impl SegMask {
    /// Creates an all-background mask.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "mask dimensions must be non-zero");
        Self {
            plane: BitPlane::new(width, height),
        }
    }

    /// Packs an existing row-major 0/1 byte buffer, validating it.
    ///
    /// # Errors
    /// Returns [`MaskError::ZeroDimension`] for an empty raster,
    /// [`MaskError::SizeMismatch`] when `data.len() != width * height`, and
    /// [`MaskError::BadValue`] for any byte that is not 0 or 1.
    pub fn try_from_vec(width: usize, height: usize, data: &[u8]) -> Result<Self, MaskError> {
        if width == 0 || height == 0 {
            return Err(MaskError::ZeroDimension);
        }
        if data.len() != width * height {
            return Err(MaskError::SizeMismatch {
                expected: width * height,
                got: data.len(),
            });
        }
        if let Some(index) = data.iter().position(|&v| v > 1) {
            return Err(MaskError::BadValue {
                index,
                value: data[index],
            });
        }
        let mut plane = BitPlane::new(width, height);
        for (y, row) in data.chunks_exact(width).enumerate() {
            pack_row(row, &mut plane.words[y * plane.words_per_row..], |&v| {
                v == 1
            });
        }
        Ok(Self { plane })
    }

    /// Wraps an existing 0/1 buffer.
    ///
    /// # Panics
    /// Panics on size mismatch or if any value is not 0 or 1; use
    /// [`SegMask::try_from_vec`] to handle untrusted data.
    pub fn from_vec(width: usize, height: usize, data: Vec<u8>) -> Self {
        match Self::try_from_vec(width, height, &data) {
            Ok(m) => m,
            Err(MaskError::SizeMismatch { .. }) => panic!("mask buffer size mismatch"),
            Err(MaskError::BadValue { .. }) => panic!("mask values must be 0 or 1"),
            Err(MaskError::ZeroDimension) => panic!("mask dimensions must be non-zero"),
        }
    }

    /// Packs a row-major stream of foreground flags (exactly
    /// `width * height` of them).
    ///
    /// # Panics
    /// Panics if either dimension is zero or the iterator runs short.
    pub fn from_bits<I: IntoIterator<Item = bool>>(width: usize, height: usize, bits: I) -> Self {
        let mut mask = SegMask::new(width, height);
        let wpr = mask.plane.words_per_row;
        let mut it = bits.into_iter();
        for y in 0..height {
            for k in 0..wpr {
                let n = (width - k * 64).min(64);
                let mut word = 0u64;
                for j in 0..n {
                    let bit = it.next().expect("mask bit iterator ran short");
                    word |= (bit as u64) << j;
                }
                mask.plane.words[y * wpr + k] = word;
            }
        }
        mask
    }

    /// Wraps raw packed rows (see the module docs for the layout). Tail bits
    /// past `width` are cleared, so callers may pass unmasked final words.
    ///
    /// # Panics
    /// Panics if a dimension is zero or `words.len()` is not
    /// `words_per_row * height`.
    pub fn from_words(width: usize, height: usize, words: Vec<u64>) -> Self {
        assert!(width > 0 && height > 0, "mask dimensions must be non-zero");
        let words_per_row = width.div_ceil(MASK_WORD_BITS);
        assert_eq!(
            words.len(),
            words_per_row * height,
            "mask word buffer size mismatch"
        );
        let mut plane = BitPlane {
            width,
            height,
            words_per_row,
            words,
        };
        plane.clear_tail_bits();
        Self { plane }
    }

    /// Mask width in pixels.
    pub fn width(&self) -> usize {
        self.plane.width
    }

    /// Mask height in pixels.
    pub fn height(&self) -> usize {
        self.plane.height
    }

    /// Words per packed row (rows are word-aligned and disjoint).
    pub fn words_per_row(&self) -> usize {
        self.plane.words_per_row
    }

    /// The packed words, row-major (`words_per_row()` per row).
    pub fn words(&self) -> &[u64] {
        &self.plane.words
    }

    /// Mutable packed words. Writers must keep each row's tail bits (bits at
    /// or past `width` in its final word) zero.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.plane.words
    }

    /// Expands the mask back into a row-major 0/1 byte buffer (the
    /// pre-packing representation; mostly for export and reference kernels).
    pub fn to_byte_vec(&self) -> Vec<u8> {
        let (w, h) = (self.width(), self.height());
        let mut out = vec![0u8; w * h];
        for (row, words) in out
            .chunks_exact_mut(w)
            .zip(self.plane.words.chunks_exact(self.plane.words_per_row))
        {
            unpack_row(words, row, |bit| bit as u8);
        }
        out
    }

    /// Writes the mask into `out` as 0.0/1.0 floats, word-at-a-time — the
    /// fused packed→f32 expansion NN input assembly uses.
    ///
    /// # Panics
    /// Panics if `out.len() != width * height`.
    pub fn expand_f32_into(&self, out: &mut [f32]) {
        let (w, h) = (self.width(), self.height());
        assert_eq!(out.len(), w * h, "expansion buffer size mismatch");
        for (row, words) in out
            .chunks_exact_mut(w)
            .zip(self.plane.words.chunks_exact(self.plane.words_per_row))
        {
            unpack_row(words, row, |bit| bit as u32 as f32);
        }
    }

    /// Value at `(x, y)` (0 or 1).
    ///
    /// # Panics
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        self.plane.get(x, y) as u8
    }

    /// Value at `(x, y)` with coordinates clamped into the mask.
    #[inline]
    pub fn get_clamped(&self, x: i32, y: i32) -> u8 {
        self.plane.get_clamped(x, y) as u8
    }

    /// Sets the value at `(x, y)` to 0 or 1.
    ///
    /// # Panics
    /// Panics if coordinates are out of bounds or `v > 1`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: u8) {
        assert!(v <= 1, "mask values must be 0 or 1");
        self.plane.set(x, y, v == 1);
    }

    /// The `n` (≤ 64) pixels starting at column `x0` of row `y` as an
    /// LSB-first bit word, with out-of-range coordinates clamped to the
    /// nearest edge pixel — one macro-block row of the agent unit's
    /// coalesced reference read.
    #[inline]
    pub fn extract_row_bits_clamped(&self, y: i32, x0: i32, n: usize) -> u64 {
        self.plane.extract_row_clamped(y, x0, n)
    }

    /// Number of foreground pixels (a word-parallel popcount).
    pub fn count_ones(&self) -> usize {
        self.plane.count_ones()
    }

    /// Tight bounding box of the foreground, or `None` if the mask is empty.
    pub fn bounding_box(&self) -> Option<Rect> {
        let wpr = self.plane.words_per_row;
        let (mut x0, mut x1) = (self.width(), 0usize);
        let (mut y0, mut y1) = (None, 0usize);
        for y in 0..self.height() {
            let row = &self.plane.words[y * wpr..(y + 1) * wpr];
            let mut first = None;
            let mut last = 0usize;
            for (k, &w) in row.iter().enumerate() {
                if w != 0 {
                    first.get_or_insert(k * 64 + w.trailing_zeros() as usize);
                    last = k * 64 + 63 - w.leading_zeros() as usize;
                }
            }
            if let Some(f) = first {
                y0.get_or_insert(y);
                y1 = y + 1;
                x0 = x0.min(f);
                x1 = x1.max(last + 1);
            }
        }
        y0.map(|y0| Rect::new(x0 as i32, y0 as i32, x1 as i32, y1 as i32))
    }

    /// Fills the rectangle (clamped to the mask) with foreground.
    pub fn fill_rect(&mut self, r: Rect) {
        let r = r.clamped(self.width(), self.height());
        for y in r.y0..r.y1 {
            self.plane
                .fill_row_span(y as usize, r.x0 as usize, r.x1 as usize);
        }
    }
}

/// One pixel of a reconstructed (pre-refinement) B-frame segmentation.
///
/// The hardware stores 2 bits per pixel (§IV-D of the paper): `00` black,
/// `01`/`10` gray (the two reference blocks disagreed), `11` white.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
#[repr(u8)]
pub enum Seg2 {
    /// Background in every contributing reference block (`00`).
    #[default]
    Black = 0,
    /// The two reference blocks disagreed (`01`/`10`): the mean filter output
    /// is 0.5.
    Gray = 1,
    /// Foreground in every contributing reference block (`11`).
    White = 2,
}

impl Seg2 {
    /// Mean-filter value in `[0, 1]` used as the NN-S input channel.
    pub fn to_f32(self) -> f32 {
        match self {
            Seg2::Black => 0.0,
            Seg2::Gray => 0.5,
            Seg2::White => 1.0,
        }
    }

    /// Combines the 1-bit values of the (up to two) reference pixels exactly
    /// like the hardware mean filter: `0+0 → Black`, `1+1 → White`, mixed →
    /// `Gray`.
    pub fn from_bits(a: u8, b: u8) -> Self {
        match (a & 1) + (b & 1) {
            0 => Seg2::Black,
            1 => Seg2::Gray,
            _ => Seg2::White,
        }
    }

    /// The number of hardware bits per pixel of this representation.
    pub const BITS: usize = 2;
}

impl std::fmt::Display for Seg2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Seg2::Black => "black",
            Seg2::Gray => "gray",
            Seg2::White => "white",
        };
        f.write_str(s)
    }
}

/// A 2-bit-per-pixel reconstructed segmentation plane (the contents of a
/// `tmp_B` buffer after reconstruction), stored as two bitplanes: a
/// **white** plane (both references foreground) and a **gray** plane (the
/// references disagreed). The planes are disjoint — no pixel has both bits —
/// which every word-parallel consumer relies on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Seg2Plane {
    white: BitPlane,
    gray: BitPlane,
}

impl Seg2Plane {
    /// Creates an all-black plane.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "plane dimensions must be non-zero");
        Self {
            white: BitPlane::new(width, height),
            gray: BitPlane::new(width, height),
        }
    }

    /// Packs a row-major buffer of 2-bit codes (0 = black, 1 = gray,
    /// 2 = white — the [`Seg2`] discriminants), validating it.
    ///
    /// # Errors
    /// Returns [`MaskError::ZeroDimension`] for an empty raster,
    /// [`MaskError::SizeMismatch`] when `data.len() != width * height`, and
    /// [`MaskError::BadValue`] for any code above 2.
    pub fn try_from_vec(width: usize, height: usize, data: &[u8]) -> Result<Self, MaskError> {
        if width == 0 || height == 0 {
            return Err(MaskError::ZeroDimension);
        }
        if data.len() != width * height {
            return Err(MaskError::SizeMismatch {
                expected: width * height,
                got: data.len(),
            });
        }
        if let Some(index) = data.iter().position(|&v| v > 2) {
            return Err(MaskError::BadValue {
                index,
                value: data[index],
            });
        }
        let mut plane = Seg2Plane::new(width, height);
        let wpr = plane.white.words_per_row;
        for (y, row) in data.chunks_exact(width).enumerate() {
            pack_row(row, &mut plane.white.words[y * wpr..], |&v| v == 2);
            pack_row(row, &mut plane.gray.words[y * wpr..], |&v| v == 1);
        }
        Ok(plane)
    }

    /// Packs a row-major buffer of 2-bit codes (see
    /// [`Seg2Plane::try_from_vec`]).
    ///
    /// # Panics
    /// Panics on size mismatch or a code above 2; use `try_from_vec` to
    /// handle untrusted data.
    pub fn from_vec(width: usize, height: usize, data: Vec<u8>) -> Self {
        match Self::try_from_vec(width, height, &data) {
            Ok(p) => p,
            Err(MaskError::SizeMismatch { .. }) => panic!("plane buffer size mismatch"),
            Err(MaskError::BadValue { .. }) => panic!("plane values must be 0, 1 or 2"),
            Err(MaskError::ZeroDimension) => panic!("plane dimensions must be non-zero"),
        }
    }

    /// Plane width in pixels.
    pub fn width(&self) -> usize {
        self.white.width
    }

    /// Plane height in pixels.
    pub fn height(&self) -> usize {
        self.white.height
    }

    /// Words per packed row (shared by both bitplanes).
    pub fn words_per_row(&self) -> usize {
        self.white.words_per_row
    }

    /// The packed white plane (both references foreground), row-major.
    pub fn white_words(&self) -> &[u64] {
        &self.white.words
    }

    /// The packed gray plane (references disagreed), row-major.
    pub fn gray_words(&self) -> &[u64] {
        &self.gray.words
    }

    /// Value at `(x, y)`.
    ///
    /// # Panics
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> Seg2 {
        if self.white.get(x, y) {
            Seg2::White
        } else if self.gray.get(x, y) {
            Seg2::Gray
        } else {
            Seg2::Black
        }
    }

    /// Sets the value at `(x, y)`.
    ///
    /// # Panics
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: Seg2) {
        self.white.set(x, y, v == Seg2::White);
        self.gray.set(x, y, v == Seg2::Gray);
    }

    /// Overwrites one `n`-pixel block row at `(x0, y)` from mean-filtered
    /// reference bits: `white = a AND b`, `gray = a XOR b` (pass `b = a` for
    /// a single-reference block). This is the shift-and-merge word move that
    /// replaces the per-pixel reference copy.
    ///
    /// # Panics
    /// Panics if the span leaves the plane.
    #[inline]
    pub fn write_mean_filtered_row(&mut self, y: usize, x0: usize, n: usize, a: u64, b: u64) {
        self.white.write_span(y, x0, n, a & b);
        self.gray.write_span(y, x0, n, a ^ b);
    }

    /// Whole-frame bi-reference mean filter: combines two masks into a
    /// black/gray/white plane with two bitwise passes (`white = a AND b`,
    /// `gray = a XOR b`) — the packed analogue of applying
    /// [`Seg2::from_bits`] per pixel.
    ///
    /// # Panics
    /// Panics if the mask dimensions differ.
    pub fn mean_filter(a: &SegMask, b: &SegMask) -> Self {
        assert_eq!(a.width(), b.width(), "mean filter width mismatch");
        assert_eq!(a.height(), b.height(), "mean filter height mismatch");
        let mut out = Seg2Plane::new(a.width(), a.height());
        for ((w, g), (&wa, &wb)) in out
            .white
            .words
            .iter_mut()
            .zip(out.gray.words.iter_mut())
            .zip(a.words().iter().zip(b.words()))
        {
            *w = wa & wb;
            *g = wa ^ wb;
        }
        out
    }

    /// Thresholds the plane into a binary mask (gray counts as foreground
    /// when `gray_is_foreground` is set) — an OR over the bitplanes.
    pub fn to_mask(&self, gray_is_foreground: bool) -> SegMask {
        let words = if gray_is_foreground {
            self.white
                .words
                .iter()
                .zip(&self.gray.words)
                .map(|(&w, &g)| w | g)
                .collect()
        } else {
            self.white.words.clone()
        };
        SegMask::from_words(self.width(), self.height(), words)
    }

    /// Writes the plane into `out` as its mean-filter values 0.0/0.5/1.0,
    /// word-at-a-time — the fused packed→f32 expansion feeding NN-S.
    ///
    /// # Panics
    /// Panics if `out.len() != width * height`.
    pub fn expand_f32_into(&self, out: &mut [f32]) {
        let (w, h) = (self.width(), self.height());
        assert_eq!(out.len(), w * h, "expansion buffer size mismatch");
        let wpr = self.white.words_per_row;
        for (y, row) in out.chunks_exact_mut(w).enumerate() {
            let whites = &self.white.words[y * wpr..(y + 1) * wpr];
            let grays = &self.gray.words[y * wpr..(y + 1) * wpr];
            for (k, chunk) in row.chunks_mut(64).enumerate() {
                let (ww, gw) = (whites[k], grays[k]);
                if ww == 0 && gw == 0 {
                    chunk.fill(0.0);
                    continue;
                }
                for (j, o) in chunk.iter_mut().enumerate() {
                    // The planes are disjoint, so this is exactly 0/0.5/1.
                    *o = ((ww >> j) & 1) as f32 + 0.5 * ((gw >> j) & 1) as f32;
                }
            }
        }
    }

    /// Expands the plane into row-major [`Seg2`] values (the pre-packing
    /// representation; mostly for reference kernels and tests).
    pub fn to_seg2_vec(&self) -> Vec<Seg2> {
        let (w, h) = (self.width(), self.height());
        let mut out = Vec::with_capacity(w * h);
        for y in 0..h {
            for x in 0..w {
                out.push(self.get(x, y));
            }
        }
        out
    }

    /// Storage size in bits (2 bits per pixel, as in the tmp_B buffers).
    pub fn storage_bits(&self) -> usize {
        self.width() * self.height() * Seg2::BITS
    }
}

/// Packs one byte row into the row's words via `pred`.
fn pack_row<T, F: Fn(&T) -> bool>(row: &[T], words: &mut [u64], pred: F) {
    for (k, chunk) in row.chunks(64).enumerate() {
        let mut word = 0u64;
        for (j, v) in chunk.iter().enumerate() {
            word |= (pred(v) as u64) << j;
        }
        words[k] = word;
    }
}

/// Unpacks one row of words into per-pixel values via `f`.
fn unpack_row<T, F: Fn(u64) -> T>(words: &[u64], row: &mut [T], f: F) {
    for (k, chunk) in row.chunks_mut(64).enumerate() {
        let word = words[k];
        for (j, o) in chunk.iter_mut().enumerate() {
            *o = f((word >> j) & 1);
        }
    }
}

/// Retained byte-per-pixel kernels (the pre-packing semantics), kept as the
/// ground truth the word-parallel ops are property-tested against — the same
/// pattern as `vrd_nn::conv::reference`.
pub mod reference {
    use super::{Seg2, Seg2Plane, SegMask};

    /// Per-pixel bi-reference mean filter ([`Seg2::from_bits`] at every
    /// pixel) — the scalar ground truth of [`Seg2Plane::mean_filter`].
    ///
    /// # Panics
    /// Panics if the mask dimensions differ.
    pub fn mean_filter(a: &SegMask, b: &SegMask) -> Seg2Plane {
        assert_eq!(a.width(), b.width(), "mean filter width mismatch");
        assert_eq!(a.height(), b.height(), "mean filter height mismatch");
        let mut out = Seg2Plane::new(a.width(), a.height());
        for y in 0..a.height() {
            for x in 0..a.width() {
                out.set(x, y, Seg2::from_bits(a.get(x, y), b.get(x, y)));
            }
        }
        out
    }

    /// Per-pixel threshold of a plane into a mask — the scalar ground truth
    /// of [`Seg2Plane::to_mask`].
    pub fn plane_to_mask(plane: &Seg2Plane, gray_is_foreground: bool) -> SegMask {
        let mut out = SegMask::new(plane.width(), plane.height());
        for y in 0..plane.height() {
            for x in 0..plane.width() {
                let v = match plane.get(x, y) {
                    Seg2::Black => 0,
                    Seg2::Gray => u8::from(gray_is_foreground),
                    Seg2::White => 1,
                };
                out.set(x, y, v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_counting_and_bbox() {
        let mut m = SegMask::new(8, 6);
        assert_eq!(m.bounding_box(), None);
        m.fill_rect(Rect::new(2, 1, 5, 4));
        assert_eq!(m.count_ones(), 9);
        assert_eq!(m.bounding_box(), Some(Rect::new(2, 1, 5, 4)));
        assert_eq!(m.get(2, 1), 1);
        assert_eq!(m.get(1, 1), 0);
    }

    #[test]
    fn mask_fill_rect_clamps() {
        let mut m = SegMask::new(4, 4);
        m.fill_rect(Rect::new(-2, -2, 2, 2));
        assert_eq!(m.count_ones(), 4);
        assert_eq!(m.bounding_box(), Some(Rect::new(0, 0, 2, 2)));
    }

    #[test]
    #[should_panic(expected = "mask values must be 0 or 1")]
    fn mask_rejects_non_binary() {
        let mut m = SegMask::new(2, 2);
        m.set(0, 0, 2);
    }

    #[test]
    fn try_from_vec_validates() {
        assert_eq!(
            SegMask::try_from_vec(4, 4, &[0; 15]),
            Err(MaskError::SizeMismatch {
                expected: 16,
                got: 15
            })
        );
        let mut bad = vec![0u8; 16];
        bad[7] = 3;
        assert_eq!(
            SegMask::try_from_vec(4, 4, &bad),
            Err(MaskError::BadValue { index: 7, value: 3 })
        );
        assert_eq!(
            SegMask::try_from_vec(0, 4, &[]),
            Err(MaskError::ZeroDimension)
        );
        let ok = SegMask::try_from_vec(4, 2, &[0, 1, 0, 1, 1, 0, 0, 0]).unwrap();
        assert_eq!(ok.count_ones(), 3);
        assert_eq!(ok.get(1, 0), 1);
        assert_eq!(ok.to_byte_vec(), vec![0, 1, 0, 1, 1, 0, 0, 0]);
    }

    #[test]
    fn plane_try_from_vec_validates() {
        assert!(matches!(
            Seg2Plane::try_from_vec(2, 2, &[0, 1, 2]),
            Err(MaskError::SizeMismatch { .. })
        ));
        assert_eq!(
            Seg2Plane::try_from_vec(2, 2, &[0, 1, 2, 3]),
            Err(MaskError::BadValue { index: 3, value: 3 })
        );
        let p = Seg2Plane::try_from_vec(2, 2, &[0, 1, 2, 0]).unwrap();
        assert_eq!(p.get(1, 0), Seg2::Gray);
        assert_eq!(p.get(0, 1), Seg2::White);
        assert_eq!(
            p.to_seg2_vec(),
            vec![Seg2::Black, Seg2::Gray, Seg2::White, Seg2::Black]
        );
    }

    #[test]
    #[should_panic(expected = "mask buffer size mismatch")]
    fn from_vec_panics_on_size() {
        let _ = SegMask::from_vec(4, 3, vec![0; 11]);
    }

    #[test]
    fn packing_crosses_word_boundaries() {
        // 100 columns: each row spans two words with a 36-bit tail.
        let mut m = SegMask::new(100, 3);
        assert_eq!(m.words_per_row(), 2);
        m.set(63, 1, 1);
        m.set(64, 1, 1);
        m.set(99, 2, 1);
        assert_eq!(m.get(63, 1), 1);
        assert_eq!(m.get(64, 1), 1);
        assert_eq!(m.get(62, 1), 0);
        assert_eq!(m.count_ones(), 3);
        assert_eq!(m.bounding_box(), Some(Rect::new(63, 1, 100, 3)));
        // Tail bits stay zero through from_words even if handed garbage.
        let mut words = m.words().to_vec();
        words[1] |= !0u64 << 36;
        let cleaned = SegMask::from_words(100, 3, words);
        assert_eq!(cleaned, m);
    }

    #[test]
    fn extract_row_bits_matches_clamped_gets() {
        let mut m = SegMask::new(70, 4);
        m.fill_rect(Rect::new(60, 1, 68, 3));
        m.set(0, 0, 1);
        for &(y, x0, n) in &[
            (1i32, 58i32, 16usize),
            (0, -5, 12),
            (2, 64, 10),
            (5, 66, 8),
            (-3, -2, 64),
            (1, 62, 4),
        ] {
            let bits = m.extract_row_bits_clamped(y, x0, n);
            for j in 0..n {
                let want = m.get_clamped(x0 + j as i32, y) as u64;
                assert_eq!(
                    (bits >> j) & 1,
                    want,
                    "row {y}, x0 {x0}, n {n}, bit {j} mismatch"
                );
            }
        }
    }

    #[test]
    fn from_bits_roundtrip() {
        let bytes: Vec<u8> = (0..66 * 3).map(|i| ((i * 7) % 3 == 0) as u8).collect();
        let m = SegMask::from_bits(66, 3, bytes.iter().map(|&b| b == 1));
        assert_eq!(m.to_byte_vec(), bytes);
        let mut f32s = vec![9.0f32; 66 * 3];
        m.expand_f32_into(&mut f32s);
        assert!(f32s.iter().zip(&bytes).all(|(&f, &b)| f == f32::from(b)));
    }

    #[test]
    fn seg2_mean_filter_semantics() {
        assert_eq!(Seg2::from_bits(0, 0), Seg2::Black);
        assert_eq!(Seg2::from_bits(1, 0), Seg2::Gray);
        assert_eq!(Seg2::from_bits(0, 1), Seg2::Gray);
        assert_eq!(Seg2::from_bits(1, 1), Seg2::White);
        assert_eq!(Seg2::Gray.to_f32(), 0.5);
    }

    #[test]
    fn seg2_plane_threshold_and_storage() {
        let mut p = Seg2Plane::new(3, 2);
        p.set(0, 0, Seg2::White);
        p.set(1, 0, Seg2::Gray);
        assert_eq!(p.storage_bits(), 12);
        let strict = p.to_mask(false);
        assert_eq!(strict.count_ones(), 1);
        let lenient = p.to_mask(true);
        assert_eq!(lenient.count_ones(), 2);
        // Overwriting gray with white clears the gray bit (disjointness).
        p.set(1, 0, Seg2::White);
        assert_eq!(p.get(1, 0), Seg2::White);
        p.set(1, 0, Seg2::Black);
        assert_eq!(p.get(1, 0), Seg2::Black);
    }

    #[test]
    fn whole_frame_mean_filter_matches_reference() {
        let mut a = SegMask::new(130, 5);
        let mut b = SegMask::new(130, 5);
        a.fill_rect(Rect::new(10, 0, 80, 4));
        b.fill_rect(Rect::new(60, 1, 129, 5));
        let packed = Seg2Plane::mean_filter(&a, &b);
        let scalar = reference::mean_filter(&a, &b);
        assert_eq!(packed, scalar);
        assert_eq!(packed.get(70, 2), Seg2::White);
        assert_eq!(packed.get(20, 2), Seg2::Gray);
        assert_eq!(packed.get(0, 0), Seg2::Black);
        for gray_fg in [false, true] {
            assert_eq!(
                packed.to_mask(gray_fg),
                reference::plane_to_mask(&packed, gray_fg)
            );
        }
    }

    #[test]
    fn mean_filtered_row_writes() {
        let mut p = Seg2Plane::new(100, 2);
        // a = 0b1100, b = 0b1010 over 4 pixels at the word boundary.
        p.write_mean_filtered_row(0, 62, 4, 0b1100, 0b1010);
        assert_eq!(p.get(62, 0), Seg2::Black); // 0,0
        assert_eq!(p.get(63, 0), Seg2::Gray); // 0,1
        assert_eq!(p.get(64, 0), Seg2::Gray); // 1,0
        assert_eq!(p.get(65, 0), Seg2::White); // 1,1
        assert_eq!(p.get(66, 0), Seg2::Black);
        // Overwrite is destructive for the whole span.
        p.write_mean_filtered_row(0, 62, 4, 0, 0);
        assert_eq!(p.get(63, 0), Seg2::Black);
        assert_eq!(p.get(65, 0), Seg2::Black);
    }

    #[test]
    fn plane_expansion_values() {
        let mut p = Seg2Plane::new(66, 2);
        p.set(0, 0, Seg2::White);
        p.set(65, 0, Seg2::Gray);
        let mut out = vec![9.0f32; 66 * 2];
        p.expand_f32_into(&mut out);
        assert_eq!(out[0], 1.0);
        assert_eq!(out[65], 0.5);
        assert_eq!(out[1], 0.0);
        assert_eq!(out[66], 0.0);
    }
}
