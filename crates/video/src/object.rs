//! Moving foreground objects: shape, trajectory, deformation and appearance.
//!
//! Every quantity is an analytic function of the frame index, so a scene can
//! be sampled at any time without accumulating state, and rendering is fully
//! deterministic.

use crate::geom::{Point, Rect, Vec2};
use crate::texture::Texture;

/// Object silhouette in object-local coordinates (origin at the centre).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Shape {
    /// Axis-aligned ellipse with the given radii.
    Ellipse {
        /// Horizontal radius in pixels.
        rx: f32,
        /// Vertical radius in pixels.
        ry: f32,
    },
    /// Rectangle with the given half-extents.
    Box {
        /// Half-width in pixels.
        hw: f32,
        /// Half-height in pixels.
        hh: f32,
    },
    /// A lobed blob: radius `r0 * (1 + lobe_amp * sin(lobes * theta))`.
    ///
    /// Produces non-convex, articulated-looking silhouettes (dancers,
    /// animals) whose boundary is hard for block-level reconstruction —
    /// exactly the cases the paper's NN-S refinement exists for.
    Blob {
        /// Base radius in pixels.
        r0: f32,
        /// Number of lobes around the perimeter.
        lobes: u32,
        /// Relative lobe amplitude (0 = circle).
        lobe_amp: f32,
    },
}

impl Shape {
    /// Whether the object-local point is inside the silhouette.
    pub fn contains_local(&self, x: f32, y: f32) -> bool {
        match *self {
            Shape::Ellipse { rx, ry } => {
                let (rx, ry) = (rx.max(0.5), ry.max(0.5));
                (x / rx).powi(2) + (y / ry).powi(2) <= 1.0
            }
            Shape::Box { hw, hh } => x.abs() <= hw && y.abs() <= hh,
            Shape::Blob {
                r0,
                lobes,
                lobe_amp,
            } => {
                let r = (x * x + y * y).sqrt();
                let theta = y.atan2(x);
                let bound = r0 * (1.0 + lobe_amp * (lobes as f32 * theta).sin());
                r <= bound.max(0.5)
            }
        }
    }

    /// Radius of a circle guaranteed to contain the unscaled silhouette.
    pub fn bounding_radius(&self) -> f32 {
        match *self {
            Shape::Ellipse { rx, ry } => rx.max(ry),
            Shape::Box { hw, hh } => (hw * hw + hh * hh).sqrt(),
            Shape::Blob { r0, lobe_amp, .. } => r0 * (1.0 + lobe_amp.abs()),
        }
    }
}

/// Motion of the object centre as a function of the frame index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trajectory {
    /// Constant-velocity motion.
    Linear {
        /// Position at frame 0.
        start: Point,
        /// Displacement per frame.
        vel: Vec2,
    },
    /// Constant-velocity motion reflected off the walls of a `w`×`h` frame
    /// (with a safety `margin`), keeping the object on screen forever.
    Bounce {
        /// Position at frame 0.
        start: Point,
        /// Displacement per frame.
        vel: Vec2,
        /// Frame width in pixels.
        w: f32,
        /// Frame height in pixels.
        h: f32,
        /// Minimum distance from the walls.
        margin: f32,
    },
    /// Linear drift plus a vertical sinusoid (gallops, jumps, waves).
    Sinusoid {
        /// Position at frame 0.
        start: Point,
        /// Displacement per frame.
        vel: Vec2,
        /// Sinusoid amplitude in pixels.
        amp: f32,
        /// Sinusoid period in frames.
        period: f32,
    },
    /// Circular orbit (roundabouts, twirls).
    Circular {
        /// Orbit centre.
        center: Point,
        /// Orbit radius in pixels.
        radius: f32,
        /// Angular velocity in radians per frame.
        omega: f32,
        /// Phase at frame 0 in radians.
        phase: f32,
    },
}

/// Reflects `x` into `[lo, hi]` as if bouncing between two walls.
fn reflect(x: f32, lo: f32, hi: f32) -> f32 {
    if hi <= lo {
        return lo;
    }
    let span = hi - lo;
    let t = (x - lo).rem_euclid(2.0 * span);
    if t <= span {
        lo + t
    } else {
        lo + 2.0 * span - t
    }
}

impl Trajectory {
    /// Object-centre position at frame `t`.
    pub fn position(&self, t: f32) -> Point {
        match *self {
            Trajectory::Linear { start, vel } => start.offset(vel.scaled(t)),
            Trajectory::Bounce {
                start,
                vel,
                w,
                h,
                margin,
            } => {
                let raw = start.offset(vel.scaled(t));
                Point::new(
                    reflect(raw.x, margin, w - margin),
                    reflect(raw.y, margin, h - margin),
                )
            }
            Trajectory::Sinusoid {
                start,
                vel,
                amp,
                period,
            } => {
                let p = start.offset(vel.scaled(t));
                let phase = 2.0 * std::f32::consts::PI * t / period.max(1.0);
                Point::new(p.x, p.y + amp * phase.sin())
            }
            Trajectory::Circular {
                center,
                radius,
                omega,
                phase,
            } => {
                let a = phase + omega * t;
                Point::new(center.x + radius * a.cos(), center.y + radius * a.sin())
            }
        }
    }

    /// Mean per-frame displacement magnitude over `n` frames, used to
    /// classify sequences into the paper's fast/medium/slow groups.
    pub fn mean_speed(&self, n: usize) -> f32 {
        let n = n.max(2);
        let mut total = 0.0;
        for t in 1..n {
            let a = self.position(t as f32 - 1.0);
            let b = self.position(t as f32);
            total += a.distance(b);
        }
        total / (n - 1) as f32
    }
}

/// Time-varying shape distortion (non-rigid motion).
///
/// Deformation is what breaks pure motion-vector propagation: a translated
/// block cannot represent a silhouette that changed shape, so sequences with
/// strong deformation (`breakdance`, `bmx-trees`, `motocross-jump` in the
/// paper) lose accuracy under reconstruction and rely on NN-S.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Deformation {
    /// Rigid object.
    None,
    /// Isotropic size pulsing: scale `1 + amp * sin(2*pi*t / period)`.
    Pulse {
        /// Relative amplitude of the pulsing.
        amp: f32,
        /// Period in frames.
        period: f32,
    },
    /// Constant rotation at `omega` radians per frame.
    Spin {
        /// Angular velocity in radians per frame.
        omega: f32,
    },
    /// Pulse and spin combined (dramatic deformation).
    PulseSpin {
        /// Relative amplitude of the pulsing.
        amp: f32,
        /// Pulse period in frames.
        period: f32,
        /// Angular velocity in radians per frame.
        omega: f32,
    },
}

impl Deformation {
    /// `(scale, angle)` at frame `t`.
    pub fn at(&self, t: f32) -> (f32, f32) {
        match *self {
            Deformation::None => (1.0, 0.0),
            Deformation::Pulse { amp, period } => {
                let s = 1.0 + amp * (2.0 * std::f32::consts::PI * t / period.max(1.0)).sin();
                (s.max(0.1), 0.0)
            }
            Deformation::Spin { omega } => (1.0, omega * t),
            Deformation::PulseSpin { amp, period, omega } => {
                let s = 1.0 + amp * (2.0 * std::f32::consts::PI * t / period.max(1.0)).sin();
                (s.max(0.1), omega * t)
            }
        }
    }

    /// Scalar deformation intensity (0 = rigid) used by scene statistics.
    pub fn intensity(&self) -> f32 {
        match *self {
            Deformation::None => 0.0,
            Deformation::Pulse { amp, .. } => amp.abs(),
            Deformation::Spin { omega } => omega.abs() * 10.0,
            Deformation::PulseSpin { amp, omega, .. } => amp.abs() + omega.abs() * 10.0,
        }
    }
}

/// One foreground object in a scene.
#[derive(Debug, Clone, PartialEq)]
pub struct SceneObject {
    /// Silhouette in object-local coordinates.
    pub shape: Shape,
    /// Centre motion over time.
    pub trajectory: Trajectory,
    /// Non-rigid deformation over time.
    pub deformation: Deformation,
    /// Appearance, sampled in object-local coordinates so the texture moves
    /// rigidly with the object (this is what makes SAE block matching lock
    /// onto it).
    pub texture: Texture,
    /// Per-object texture seed.
    pub seed: u64,
}

impl SceneObject {
    /// Conservative bounding box of the object at frame `t`.
    pub fn bounding_box(&self, t: f32) -> Rect {
        let c = self.trajectory.position(t);
        let (scale, _) = self.deformation.at(t);
        let r = self.shape.bounding_radius() * scale + 1.0;
        Rect::new(
            (c.x - r).floor() as i32,
            (c.y - r).floor() as i32,
            (c.x + r).ceil() as i32,
            (c.y + r).ceil() as i32,
        )
    }

    /// Whether pixel centre `(x, y)` is inside the object at frame `t`.
    pub fn contains(&self, x: f32, y: f32, t: f32) -> bool {
        let c = self.trajectory.position(t);
        let (scale, angle) = self.deformation.at(t);
        let dx = x - c.x;
        let dy = y - c.y;
        let (sin, cos) = (-angle).sin_cos();
        let lx = (dx * cos - dy * sin) / scale;
        let ly = (dx * sin + dy * cos) / scale;
        self.shape.contains_local(lx, ly)
    }

    /// Appearance at pixel `(x, y)` at frame `t` (call only when `contains`).
    pub fn sample(&self, x: f32, y: f32, t: f32) -> u8 {
        let c = self.trajectory.position(t);
        let (scale, angle) = self.deformation.at(t);
        let dx = x - c.x;
        let dy = y - c.y;
        let (sin, cos) = (-angle).sin_cos();
        let lx = (dx * cos - dy * sin) / scale;
        let ly = (dx * sin + dy * cos) / scale;
        // Offset into positive texture space for stability of integer hashes.
        self.texture.sample(lx + 512.0, ly + 512.0, self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ellipse_and_box_membership() {
        let e = Shape::Ellipse { rx: 4.0, ry: 2.0 };
        assert!(e.contains_local(3.9, 0.0));
        assert!(!e.contains_local(0.0, 2.5));
        let b = Shape::Box { hw: 3.0, hh: 1.0 };
        assert!(b.contains_local(-3.0, 1.0));
        assert!(!b.contains_local(-3.1, 0.0));
    }

    #[test]
    fn blob_reduces_to_circle_without_lobes() {
        let blob = Shape::Blob {
            r0: 5.0,
            lobes: 6,
            lobe_amp: 0.0,
        };
        assert!(blob.contains_local(4.9, 0.0));
        assert!(!blob.contains_local(5.1, 0.0));
        assert!(blob.bounding_radius() >= 5.0);
    }

    #[test]
    fn linear_and_sinusoid_positions() {
        let lin = Trajectory::Linear {
            start: Point::new(10.0, 20.0),
            vel: Vec2::new(2.0, -1.0),
        };
        assert_eq!(lin.position(5.0), Point::new(20.0, 15.0));
        let sin = Trajectory::Sinusoid {
            start: Point::new(0.0, 0.0),
            vel: Vec2::new(1.0, 0.0),
            amp: 10.0,
            period: 4.0,
        };
        // At t = period the sinusoid completes a cycle.
        let p = sin.position(4.0);
        assert!((p.y).abs() < 1e-4);
        assert!((p.x - 4.0).abs() < 1e-6);
    }

    #[test]
    fn bounce_stays_in_bounds() {
        let tr = Trajectory::Bounce {
            start: Point::new(10.0, 10.0),
            vel: Vec2::new(7.3, 5.1),
            w: 64.0,
            h: 48.0,
            margin: 8.0,
        };
        for t in 0..500 {
            let p = tr.position(t as f32);
            assert!((8.0..=56.0).contains(&p.x), "x escaped at t={t}: {p:?}");
            assert!((8.0..=40.0).contains(&p.y), "y escaped at t={t}: {p:?}");
        }
    }

    #[test]
    fn circular_orbit_radius_is_constant() {
        let tr = Trajectory::Circular {
            center: Point::new(32.0, 24.0),
            radius: 10.0,
            omega: 0.3,
            phase: 1.0,
        };
        for t in 0..50 {
            let p = tr.position(t as f32);
            let r = p.distance(Point::new(32.0, 24.0));
            assert!((r - 10.0).abs() < 1e-3);
        }
    }

    #[test]
    fn mean_speed_matches_linear_velocity() {
        let tr = Trajectory::Linear {
            start: Point::new(0.0, 0.0),
            vel: Vec2::new(3.0, 4.0),
        };
        assert!((tr.mean_speed(20) - 5.0).abs() < 1e-4);
    }

    #[test]
    fn deformation_scale_and_angle() {
        let (s, a) = Deformation::None.at(13.0);
        assert_eq!((s, a), (1.0, 0.0));
        let (s, _) = Deformation::Pulse {
            amp: 0.5,
            period: 4.0,
        }
        .at(1.0);
        assert!((s - 1.5).abs() < 1e-5);
        let (_, a) = Deformation::Spin { omega: 0.2 }.at(5.0);
        assert!((a - 1.0).abs() < 1e-6);
        assert!(Deformation::None.intensity() == 0.0);
    }

    #[test]
    fn object_contains_respects_motion_and_rotation() {
        let obj = SceneObject {
            shape: Shape::Box { hw: 4.0, hh: 1.0 },
            trajectory: Trajectory::Linear {
                start: Point::new(20.0, 20.0),
                vel: Vec2::new(1.0, 0.0),
            },
            deformation: Deformation::Spin {
                omega: std::f32::consts::FRAC_PI_2,
            },
            texture: Texture::Noise {
                level: 200,
                amp: 10.0,
            },
            seed: 1,
        };
        // At t=0 the box is wide and flat.
        assert!(obj.contains(23.9, 20.0, 0.0));
        assert!(!obj.contains(20.0, 23.9, 0.0));
        // After a quarter-turn (t=1) it is tall and thin, and has moved by 1.
        assert!(obj.contains(21.0, 23.9, 1.0));
        assert!(!obj.contains(24.9, 20.0, 1.0));
    }

    #[test]
    fn object_bbox_contains_object() {
        let obj = SceneObject {
            shape: Shape::Ellipse { rx: 6.0, ry: 3.0 },
            trajectory: Trajectory::Linear {
                start: Point::new(30.0, 30.0),
                vel: Vec2::new(0.5, 0.25),
            },
            deformation: Deformation::Pulse {
                amp: 0.3,
                period: 8.0,
            },
            texture: Texture::Noise {
                level: 128,
                amp: 5.0,
            },
            seed: 2,
        };
        for t in 0..16 {
            let bb = obj.bounding_box(t as f32);
            for y in (bb.y0 - 2)..(bb.y1 + 2) {
                for x in (bb.x0 - 2)..(bb.x1 + 2) {
                    if obj.contains(x as f32, y as f32, t as f32) {
                        assert!(bb.contains(x, y), "pixel ({x},{y}) outside bbox at t={t}");
                    }
                }
            }
        }
    }
}
