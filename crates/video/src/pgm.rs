//! PGM (portable graymap) export for visual inspection.
//!
//! The suites are synthetic, so "what does this sequence look like?" comes
//! up constantly while debugging reconstruction quality. These helpers
//! serialise frames and masks to binary PGM (P5) — viewable by effectively
//! every image tool — without pulling in an image dependency. The `vrddump`
//! binary writes whole sequences.

use crate::frame::Frame;
use crate::mask::SegMask;

/// Serialises a frame as a binary PGM (P5) image.
///
/// # Example
/// ```
/// use vrd_video::pgm::{frame_to_pgm, parse_pgm_header};
/// use vrd_video::Frame;
///
/// # fn main() -> Result<(), String> {
/// let frame = Frame::new(16, 8);
/// let pgm = frame_to_pgm(&frame);
/// let (w, h, offset) = parse_pgm_header(&pgm)?;
/// assert_eq!((w, h), (16, 8));
/// assert_eq!(pgm.len() - offset, 16 * 8);
/// # Ok(())
/// # }
/// ```
pub fn frame_to_pgm(frame: &Frame) -> Vec<u8> {
    let mut out = format!("P5\n{} {}\n255\n", frame.width(), frame.height()).into_bytes();
    out.extend_from_slice(frame.as_slice());
    out
}

/// Serialises a mask as a binary PGM (foreground white).
pub fn mask_to_pgm(mask: &SegMask) -> Vec<u8> {
    let mut out = format!("P5\n{} {}\n255\n", mask.width(), mask.height()).into_bytes();
    out.extend(
        mask.to_byte_vec()
            .iter()
            .map(|&v| if v == 1 { 255 } else { 0 }),
    );
    out
}

/// Renders a frame with the mask's boundary burned in as white pixels
/// (the usual segmentation-overlay visualisation).
///
/// # Panics
/// Panics if the mask dimensions differ from the frame's.
pub fn overlay(frame: &Frame, mask: &SegMask) -> Frame {
    assert_eq!(frame.width(), mask.width(), "overlay width mismatch");
    assert_eq!(frame.height(), mask.height(), "overlay height mismatch");
    let (w, h) = (frame.width(), frame.height());
    let mut out = frame.clone();
    for y in 0..h {
        for x in 0..w {
            if mask.get(x, y) == 0 {
                continue;
            }
            let boundary = (x > 0 && mask.get(x - 1, y) == 0)
                || (x + 1 < w && mask.get(x + 1, y) == 0)
                || (y > 0 && mask.get(x, y - 1) == 0)
                || (y + 1 < h && mask.get(x, y + 1) == 0);
            if boundary {
                out.set(x, y, 255);
            }
        }
    }
    out
}

/// Parses the header of a binary PGM produced by this module, returning
/// `(width, height, pixel_offset)`.
///
/// # Errors
/// Returns a message for non-P5 input or malformed headers.
pub fn parse_pgm_header(data: &[u8]) -> Result<(usize, usize, usize), String> {
    // Tokenise raw bytes: the header is ASCII but is followed immediately by
    // binary pixel data, so a UTF-8 view of a fixed prefix would fail.
    let mut pos = 0usize;
    let mut token = || -> Result<&[u8], String> {
        while pos < data.len() && data[pos].is_ascii_whitespace() {
            pos += 1;
        }
        let start = pos;
        while pos < data.len() && !data[pos].is_ascii_whitespace() {
            pos += 1;
        }
        if start == pos {
            return Err("truncated header".into());
        }
        Ok(&data[start..pos])
    };
    if token()? != b"P5" {
        return Err("not a binary PGM (P5)".into());
    }
    let parse = |t: &[u8]| -> Result<usize, String> {
        std::str::from_utf8(t)
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| "non-numeric header field".into())
    };
    let w = parse(token()?)?;
    let h = parse(token()?)?;
    let maxval = parse(token()?)?;
    if maxval != 255 {
        return Err(format!("unsupported maxval {maxval}"));
    }
    // Pixels start after exactly one whitespace byte following the maxval.
    Ok((w, h, pos + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Rect;

    #[test]
    fn pgm_roundtrip_header_and_pixels() {
        let mut f = Frame::new(6, 4);
        f.set(2, 1, 200);
        let pgm = frame_to_pgm(&f);
        let (w, h, off) = parse_pgm_header(&pgm).unwrap();
        assert_eq!((w, h), (6, 4));
        assert_eq!(&pgm[off..], f.as_slice());
    }

    #[test]
    fn mask_pgm_is_black_and_white() {
        let mut m = SegMask::new(4, 4);
        m.fill_rect(Rect::new(1, 1, 3, 3));
        let pgm = mask_to_pgm(&m);
        let (_, _, off) = parse_pgm_header(&pgm).unwrap();
        let px = &pgm[off..];
        assert!(px.iter().all(|&v| v == 0 || v == 255));
        assert_eq!(px.iter().filter(|&&v| v == 255).count(), 4);
    }

    #[test]
    fn overlay_marks_only_the_boundary() {
        let f = Frame::new(8, 8);
        let mut m = SegMask::new(8, 8);
        m.fill_rect(Rect::new(2, 2, 6, 6));
        let o = overlay(&f, &m);
        // Boundary pixel is white, interior untouched.
        assert_eq!(o.get(2, 2), 255);
        assert_eq!(o.get(3, 3), 0);
        assert_eq!(o.get(0, 0), 0);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_pgm_header(b"JFIF....").is_err());
        assert!(parse_pgm_header(b"P5\nxx").is_err());
    }
}
