//! Scene composition and rendering.
//!
//! A [`Scene`] is a background plus an ordered list of [`SceneObject`]s.
//! Rendering frame `t` produces the raw luma frame, the pixel-exact
//! ground-truth segmentation mask, and the per-object ground-truth boxes —
//! the three artefacts every experiment in the paper needs (raw video for
//! the encoder, masks for IoU/F-score, boxes for mAP).

use crate::frame::Frame;
use crate::geom::{Rect, Vec2};
use crate::mask::SegMask;
use crate::object::SceneObject;
use crate::texture::Texture;

/// A complete synthetic scene.
#[derive(Debug, Clone, PartialEq)]
pub struct Scene {
    width: usize,
    height: usize,
    background: Texture,
    /// Background drift per frame (camera pan), in pixels.
    camera_pan: Vec2,
    /// Global lighting drift: `(relative amplitude, period in frames)`.
    lighting: Option<(f32, f32)>,
    objects: Vec<SceneObject>,
    seed: u64,
}

/// Everything produced by rendering one frame of a scene.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderedFrame {
    /// Raw luma frame (the encoder input).
    pub frame: Frame,
    /// Pixel-exact foreground mask (the segmentation ground truth).
    pub mask: SegMask,
    /// Tight per-object bounding boxes (the detection ground truth). Objects
    /// entirely off screen contribute no box.
    pub boxes: Vec<Rect>,
}

impl Scene {
    /// Creates an empty scene over the given canvas.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize, background: Texture, seed: u64) -> Self {
        assert!(width > 0 && height > 0, "scene dimensions must be non-zero");
        Self {
            width,
            height,
            background,
            camera_pan: Vec2::default(),
            lighting: None,
            objects: Vec::new(),
            seed,
        }
    }

    /// Sets a constant camera pan (background drift per frame).
    pub fn with_camera_pan(mut self, pan: Vec2) -> Self {
        self.camera_pan = pan;
        self
    }

    /// Adds a sinusoidal global lighting drift: every rendered pixel is
    /// scaled by `1 + amp * sin(2*pi*t / period)`. Brightness changes stress
    /// the codec's SAE matching (a real-footage phenomenon: exposure and
    /// cloud-cover changes) while leaving the geometry — and therefore the
    /// ground truth — untouched.
    pub fn with_lighting(mut self, amp: f32, period: f32) -> Self {
        self.lighting = Some((amp, period.max(1.0)));
        self
    }

    /// Appends a foreground object (later objects occlude earlier ones).
    pub fn with_object(mut self, obj: SceneObject) -> Self {
        self.objects.push(obj);
        self
    }

    /// Scene width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Scene height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The foreground objects in paint order.
    pub fn objects(&self) -> &[SceneObject] {
        &self.objects
    }

    /// Renders frame `t` of the scene.
    pub fn render(&self, t: usize) -> RenderedFrame {
        let tf = t as f32;
        let mut frame = Frame::new(self.width, self.height);
        let mut mask = SegMask::new(self.width, self.height);

        // Background with camera pan.
        let ox = self.camera_pan.dx * tf;
        let oy = self.camera_pan.dy * tf;
        for y in 0..self.height {
            for x in 0..self.width {
                let v = self
                    .background
                    .sample(x as f32 + ox, y as f32 + oy, self.seed);
                frame.set(x, y, v);
            }
        }

        // Objects, in paint order; later objects overwrite earlier ones.
        let mut boxes = Vec::with_capacity(self.objects.len());
        for obj in &self.objects {
            let bb = obj.bounding_box(tf).clamped(self.width, self.height);
            let mut tight: Option<Rect> = None;
            for y in bb.y0..bb.y1 {
                for x in bb.x0..bb.x1 {
                    // Sample at the pixel centre.
                    let fx = x as f32 + 0.5;
                    let fy = y as f32 + 0.5;
                    if obj.contains(fx, fy, tf) {
                        frame.set(x as usize, y as usize, obj.sample(fx, fy, tf));
                        mask.set(x as usize, y as usize, 1);
                        let px = Rect::new(x, y, x + 1, y + 1);
                        tight = Some(match tight {
                            Some(r) => r.union(&px),
                            None => px,
                        });
                    }
                }
            }
            if let Some(r) = tight {
                boxes.push(r);
            }
        }

        // Global lighting drift, applied uniformly after composition.
        if let Some((amp, period)) = self.lighting {
            let gain = 1.0 + amp * (2.0 * std::f32::consts::PI * tf / period).sin();
            for v in frame.as_mut_slice() {
                *v = (*v as f32 * gain).clamp(0.0, 255.0) as u8;
            }
        }

        RenderedFrame { frame, mask, boxes }
    }

    /// Mean per-frame object speed (pixels/frame), averaged over objects.
    pub fn mean_object_speed(&self, n_frames: usize) -> f32 {
        if self.objects.is_empty() {
            return 0.0;
        }
        let sum: f32 = self
            .objects
            .iter()
            .map(|o| o.trajectory.mean_speed(n_frames))
            .sum();
        sum / self.objects.len() as f32 + self.camera_pan.norm()
    }

    /// Maximum deformation intensity across objects (0 = all rigid).
    pub fn deformation_intensity(&self) -> f32 {
        self.objects
            .iter()
            .map(|o| o.deformation.intensity())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Point;
    use crate::object::{Deformation, Shape, Trajectory};

    fn test_scene() -> Scene {
        Scene::new(
            64,
            48,
            Texture::Blobs {
                lo: 60,
                hi: 180,
                scale: 10.0,
            },
            7,
        )
        .with_object(SceneObject {
            shape: Shape::Ellipse { rx: 8.0, ry: 5.0 },
            trajectory: Trajectory::Linear {
                start: Point::new(20.0, 24.0),
                vel: Vec2::new(1.5, 0.0),
            },
            deformation: Deformation::None,
            texture: Texture::Stripes {
                a: 230,
                b: 20,
                period: 3,
            },
            seed: 11,
        })
    }

    #[test]
    fn render_is_deterministic() {
        let s = test_scene();
        let a = s.render(5);
        let b = s.render(5);
        assert_eq!(a.frame, b.frame);
        assert_eq!(a.mask, b.mask);
        assert_eq!(a.boxes, b.boxes);
    }

    #[test]
    fn mask_matches_box_and_moves() {
        let s = test_scene();
        let r0 = s.render(0);
        let r4 = s.render(4);
        assert!(r0.mask.count_ones() > 50, "object should cover pixels");
        let b0 = r0.boxes[0];
        let b4 = r4.boxes[0];
        // The object moved right by ~6 pixels over 4 frames.
        assert!(b4.x0 > b0.x0 + 3, "object did not move: {b0:?} -> {b4:?}");
        // The ground-truth box is exactly the mask's bounding box for a
        // single-object scene.
        assert_eq!(r0.mask.bounding_box(), Some(b0));
    }

    #[test]
    fn object_pixels_are_marked_in_mask() {
        let s = test_scene();
        let r = s.render(2);
        for y in 0..48 {
            for x in 0..64 {
                let inside = s.objects()[0].contains(x as f32 + 0.5, y as f32 + 0.5, 2.0);
                assert_eq!(r.mask.get(x, y) == 1, inside, "mismatch at ({x},{y})");
            }
        }
    }

    #[test]
    fn later_objects_occlude_earlier() {
        let s = test_scene().with_object(SceneObject {
            shape: Shape::Box { hw: 4.0, hh: 4.0 },
            trajectory: Trajectory::Linear {
                start: Point::new(20.0, 24.0),
                vel: Vec2::new(1.5, 0.0),
            },
            deformation: Deformation::None,
            texture: Texture::Noise {
                level: 255,
                amp: 0.0,
            },
            seed: 3,
        });
        let r = s.render(0);
        // Centre pixel belongs to the second object (drawn last).
        assert_eq!(r.frame.get(20, 24), 255);
        assert_eq!(r.boxes.len(), 2);
    }

    #[test]
    fn lighting_drift_scales_pixels_but_not_ground_truth() {
        let plain = test_scene();
        let lit = test_scene().with_lighting(0.3, 8.0);
        // At t = 2 the sinusoid is at sin(pi/2) = 1: gain 1.3.
        let a = plain.render(2);
        let b = lit.render(2);
        assert_eq!(a.mask, b.mask, "lighting must not move the ground truth");
        assert_eq!(a.boxes, b.boxes);
        let mean = |f: &crate::frame::Frame| {
            f.as_slice().iter().map(|&v| v as f64).sum::<f64>() / f.as_slice().len() as f64
        };
        assert!(
            mean(&b.frame) > mean(&a.frame) * 1.15,
            "gain not applied: {} vs {}",
            mean(&b.frame),
            mean(&a.frame)
        );
        // At t = 0 the gain is 1: identical frames.
        assert_eq!(plain.render(0).frame, lit.render(0).frame);
    }

    #[test]
    fn camera_pan_changes_background() {
        let static_scene = test_scene();
        let panned = test_scene().with_camera_pan(Vec2::new(2.0, 0.0));
        let a = panned.render(0);
        let b = panned.render(3);
        // Background at t=3 equals background at t=0 shifted by 6 px.
        assert_eq!(a.frame.get(16, 5), b.frame.get(10, 5));
        assert!(static_scene.mean_object_speed(16) < panned.mean_object_speed(16));
    }

    #[test]
    fn speed_and_deformation_stats() {
        let s = test_scene();
        assert!((s.mean_object_speed(16) - 1.5).abs() < 0.05);
        assert_eq!(s.deformation_intensity(), 0.0);
        let d = Scene::new(
            32,
            32,
            Texture::Noise {
                level: 90,
                amp: 8.0,
            },
            1,
        )
        .with_object(SceneObject {
            shape: Shape::Ellipse { rx: 5.0, ry: 5.0 },
            trajectory: Trajectory::Linear {
                start: Point::new(16.0, 16.0),
                vel: Vec2::new(0.0, 0.0),
            },
            deformation: Deformation::Pulse {
                amp: 0.4,
                period: 6.0,
            },
            texture: Texture::Noise {
                level: 200,
                amp: 5.0,
            },
            seed: 9,
        });
        assert!((d.deformation_intensity() - 0.4).abs() < 1e-6);
    }
}
