//! Materialised video sequences with ground truth.
//!
//! A [`Sequence`] is the unit every experiment operates on: the raw frames go
//! through the encoder, the masks/boxes are the accuracy reference. Sequences
//! carry their motion statistics so experiments can group them into the
//! paper's *fast / medium / slow* classes (Fig. 11).

use crate::frame::Frame;
use crate::geom::Rect;
use crate::mask::SegMask;
use crate::scene::Scene;

/// The paper's object-speed grouping for detection accuracy (Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpeedClass {
    /// Slowly moving objects (VR-DANN degrades mAP by only ~0.5%).
    Slow,
    /// Moderate motion.
    Medium,
    /// Fast motion (motion vectors mispredict; ~1.1% mAP degradation).
    Fast,
}

impl SpeedClass {
    /// Classifies a normalised object speed (pixels/frame at the reference
    /// 160-pixel-wide canvas).
    pub fn from_speed(speed: f32) -> Self {
        if speed < 1.0 {
            SpeedClass::Slow
        } else if speed < 2.4 {
            SpeedClass::Medium
        } else {
            SpeedClass::Fast
        }
    }
}

impl std::fmt::Display for SpeedClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SpeedClass::Slow => "slow",
            SpeedClass::Medium => "medium",
            SpeedClass::Fast => "fast",
        };
        f.write_str(s)
    }
}

/// A rendered video sequence plus per-frame ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct Sequence {
    /// Sequence name (DAVIS-style, e.g. `"cows"`).
    pub name: String,
    /// Raw luma frames in display order.
    pub frames: Vec<Frame>,
    /// Ground-truth segmentation mask per frame.
    pub gt_masks: Vec<SegMask>,
    /// Ground-truth object boxes per frame.
    pub gt_boxes: Vec<Vec<Rect>>,
    /// Mean object speed normalised to the 160-pixel-wide reference canvas.
    pub norm_speed: f32,
    /// Deformation intensity of the most deformable object.
    pub deformation: f32,
}

impl Sequence {
    /// Renders `n_frames` of `scene` into a sequence.
    ///
    /// # Panics
    /// Panics if `n_frames` is zero.
    pub fn from_scene(name: impl Into<String>, scene: &Scene, n_frames: usize) -> Self {
        assert!(n_frames > 0, "a sequence needs at least one frame");
        let mut frames = Vec::with_capacity(n_frames);
        let mut gt_masks = Vec::with_capacity(n_frames);
        let mut gt_boxes = Vec::with_capacity(n_frames);
        for t in 0..n_frames {
            let r = scene.render(t);
            frames.push(r.frame);
            gt_masks.push(r.mask);
            gt_boxes.push(r.boxes);
        }
        let norm_speed = scene.mean_object_speed(n_frames) * 160.0 / scene.width() as f32;
        Self {
            name: name.into(),
            frames,
            gt_masks,
            gt_boxes,
            norm_speed,
            deformation: scene.deformation_intensity(),
        }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the sequence holds no frames (never true for rendered ones).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Frame width in pixels.
    pub fn width(&self) -> usize {
        self.frames[0].width()
    }

    /// Frame height in pixels.
    pub fn height(&self) -> usize {
        self.frames[0].height()
    }

    /// The paper's speed grouping of this sequence.
    pub fn speed_class(&self) -> SpeedClass {
        SpeedClass::from_speed(self.norm_speed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::{Point, Vec2};
    use crate::object::{Deformation, SceneObject, Shape, Trajectory};
    use crate::texture::Texture;

    #[test]
    fn speed_class_thresholds() {
        assert_eq!(SpeedClass::from_speed(0.2), SpeedClass::Slow);
        assert_eq!(SpeedClass::from_speed(1.5), SpeedClass::Medium);
        assert_eq!(SpeedClass::from_speed(3.0), SpeedClass::Fast);
        assert_eq!(SpeedClass::Fast.to_string(), "fast");
    }

    #[test]
    fn sequence_from_scene_has_aligned_ground_truth() {
        let scene = Scene::new(
            80,
            48,
            Texture::Blobs {
                lo: 50,
                hi: 200,
                scale: 8.0,
            },
            3,
        )
        .with_object(SceneObject {
            shape: Shape::Ellipse { rx: 7.0, ry: 5.0 },
            trajectory: Trajectory::Linear {
                start: Point::new(30.0, 24.0),
                vel: Vec2::new(2.0, 0.0),
            },
            deformation: Deformation::None,
            texture: Texture::Checker {
                a: 240,
                b: 30,
                cell: 2,
            },
            seed: 5,
        });
        let seq = Sequence::from_scene("probe", &scene, 10);
        assert_eq!(seq.len(), 10);
        assert!(!seq.is_empty());
        assert_eq!(seq.width(), 80);
        assert_eq!(seq.height(), 48);
        assert_eq!(seq.gt_masks.len(), 10);
        assert_eq!(seq.gt_boxes.len(), 10);
        for t in 0..10 {
            assert_eq!(seq.gt_masks[t].bounding_box(), Some(seq.gt_boxes[t][0]));
        }
        // Normalised speed: 2 px/frame at width 80 -> 4.0 at width 160.
        assert!((seq.norm_speed - 4.0).abs() < 0.1, "{}", seq.norm_speed);
        assert_eq!(seq.speed_class(), SpeedClass::Fast);
    }
}
