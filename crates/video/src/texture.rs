//! Deterministic procedural textures.
//!
//! The codec's SAE block matching only behaves realistically when frames have
//! spatial structure (a flat frame matches everywhere). These textures give
//! backgrounds and objects distinctive, reproducible appearance without any
//! image assets. All of them are pure functions of `(x, y, seed)` so a scene
//! rendered twice is bit-identical.

/// A 2D integer hash with decent avalanche behaviour (xorshift-multiply).
///
/// Deterministic across platforms; used as the noise source for every
/// texture.
#[inline]
pub fn hash2(x: i64, y: i64, seed: u64) -> u64 {
    let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
    h = h.wrapping_add((x as u64).wrapping_mul(0xff51_afd7_ed55_8ccd));
    h ^= h >> 33;
    h = h.wrapping_add((y as u64).wrapping_mul(0xc4ce_b9fe_1a85_ec53));
    h ^= h >> 29;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 32;
    h
}

/// Uniform `[0, 1)` noise derived from [`hash2`].
#[inline]
pub fn noise01(x: i64, y: i64, seed: u64) -> f32 {
    (hash2(x, y, seed) >> 40) as f32 / (1u64 << 24) as f32
}

/// Smooth value noise: bilinear interpolation of lattice noise at `scale`
/// pixel spacing. Gives blob-like low-frequency structure.
pub fn value_noise(x: f32, y: f32, scale: f32, seed: u64) -> f32 {
    let gx = x / scale;
    let gy = y / scale;
    let x0 = gx.floor() as i64;
    let y0 = gy.floor() as i64;
    let fx = gx - x0 as f32;
    let fy = gy - y0 as f32;
    // Smoothstep fade for C1 continuity.
    let sx = fx * fx * (3.0 - 2.0 * fx);
    let sy = fy * fy * (3.0 - 2.0 * fy);
    let n00 = noise01(x0, y0, seed);
    let n10 = noise01(x0 + 1, y0, seed);
    let n01 = noise01(x0, y0 + 1, seed);
    let n11 = noise01(x0 + 1, y0 + 1, seed);
    let top = n00 + (n10 - n00) * sx;
    let bot = n01 + (n11 - n01) * sx;
    top + (bot - top) * sy
}

/// A procedural texture assignable to a background or an object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Texture {
    /// Constant `level` plus `amp`-scaled white noise.
    Noise {
        /// Base gray level, 0–255.
        level: u8,
        /// Noise amplitude in gray levels.
        amp: f32,
    },
    /// Diagonal stripes: alternating `a`/`b` bands of `period` pixels.
    Stripes {
        /// Gray level of the first band.
        a: u8,
        /// Gray level of the second band.
        b: u8,
        /// Band period in pixels.
        period: u32,
    },
    /// Checkerboard of `cell` pixel squares between `a` and `b`.
    Checker {
        /// Gray level of even cells.
        a: u8,
        /// Gray level of odd cells.
        b: u8,
        /// Cell edge length in pixels.
        cell: u32,
    },
    /// Low-frequency smooth blobs between `lo` and `hi` at `scale` spacing,
    /// with a little high-frequency noise on top so blocks stay matchable.
    Blobs {
        /// Darkest gray level.
        lo: u8,
        /// Brightest gray level.
        hi: u8,
        /// Blob spacing in pixels.
        scale: f32,
    },
}

impl Texture {
    /// Samples the texture at texture-local coordinates `(x, y)`.
    pub fn sample(&self, x: f32, y: f32, seed: u64) -> u8 {
        match *self {
            Texture::Noise { level, amp } => {
                let n = noise01(x as i64, y as i64, seed) - 0.5;
                (level as f32 + n * 2.0 * amp).clamp(0.0, 255.0) as u8
            }
            Texture::Stripes { a, b, period } => {
                let p = period.max(1) as f32;
                let band = ((x + y) / p).floor() as i64;
                if band.rem_euclid(2) == 0 {
                    a
                } else {
                    b
                }
            }
            Texture::Checker { a, b, cell } => {
                let c = cell.max(1) as f32;
                let cx = (x / c).floor() as i64;
                let cy = (y / c).floor() as i64;
                if (cx + cy).rem_euclid(2) == 0 {
                    a
                } else {
                    b
                }
            }
            Texture::Blobs { lo, hi, scale } => {
                let v = value_noise(x, y, scale.max(1.0), seed);
                let fine = (noise01(x as i64, y as i64, seed ^ 0xabcd) - 0.5) * 12.0;
                let span = hi as f32 - lo as f32;
                (lo as f32 + v * span + fine).clamp(0.0, 255.0) as u8
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_spreads() {
        assert_eq!(hash2(3, 4, 7), hash2(3, 4, 7));
        assert_ne!(hash2(3, 4, 7), hash2(4, 3, 7));
        assert_ne!(hash2(3, 4, 7), hash2(3, 4, 8));
    }

    #[test]
    fn noise01_in_unit_interval() {
        for i in 0..1000 {
            let n = noise01(i, -i * 3, 42);
            assert!((0.0..1.0).contains(&n), "noise out of range: {n}");
        }
    }

    #[test]
    fn value_noise_smooth_and_bounded() {
        let mut prev = value_noise(0.0, 0.0, 8.0, 1);
        for i in 1..200 {
            let v = value_noise(i as f32 * 0.25, 3.0, 8.0, 1);
            assert!((0.0..=1.0).contains(&v));
            // Smoothness: quarter-pixel steps move the value only slightly.
            assert!((v - prev).abs() < 0.25, "jump at step {i}");
            prev = v;
        }
    }

    #[test]
    fn stripes_alternate() {
        let t = Texture::Stripes {
            a: 10,
            b: 200,
            period: 4,
        };
        assert_eq!(t.sample(0.0, 0.0, 0), 10);
        assert_eq!(t.sample(4.0, 0.0, 0), 200);
        assert_eq!(t.sample(8.0, 0.0, 0), 10);
        // Negative coordinates still alternate rather than panicking.
        assert_eq!(t.sample(-4.0, 0.0, 0), 200);
    }

    #[test]
    fn checker_alternates_in_both_axes() {
        let t = Texture::Checker {
            a: 0,
            b: 255,
            cell: 2,
        };
        assert_eq!(t.sample(0.0, 0.0, 0), 0);
        assert_eq!(t.sample(2.0, 0.0, 0), 255);
        assert_eq!(t.sample(0.0, 2.0, 0), 255);
        assert_eq!(t.sample(2.0, 2.0, 0), 0);
    }

    #[test]
    fn textures_are_deterministic() {
        for t in [
            Texture::Noise {
                level: 128,
                amp: 30.0,
            },
            Texture::Blobs {
                lo: 40,
                hi: 220,
                scale: 9.0,
            },
        ] {
            assert_eq!(t.sample(13.0, 27.0, 5), t.sample(13.0, 27.0, 5));
        }
    }
}
