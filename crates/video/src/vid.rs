//! The ImageNet-VID-like detection benchmark suite.
//!
//! Stands in for the ImageNet-VID validation split used by the paper's
//! detection experiments (Fig. 11). Sequences contain one to three objects
//! with per-frame ground-truth boxes and are generated in three speed groups
//! (fast / medium / slow) so the paper's grouped mAP comparison can be
//! reproduced.

use crate::davis::SuiteConfig;
use crate::geom::{Point, Vec2};
use crate::object::{Deformation, SceneObject, Shape, Trajectory};
use crate::scene::Scene;
use crate::sequence::{Sequence, SpeedClass};
use crate::texture::{hash2, Texture};

/// Speeds (reference pixels/frame) representative of each group.
fn group_speed(class: SpeedClass, salt: u64) -> f32 {
    let jitter = (salt % 100) as f32 / 100.0;
    match class {
        SpeedClass::Slow => 0.3 + 0.5 * jitter,
        SpeedClass::Medium => 1.1 + 1.0 * jitter,
        SpeedClass::Fast => 2.5 + 1.3 * jitter,
    }
}

fn vid_scene(cfg: &SuiteConfig, class: SpeedClass, index: usize) -> Scene {
    let w = cfg.width as f32;
    let h = cfg.height as f32;
    let sx = w / 160.0;
    let seed = hash2(index as i64, class as i64, cfg.seed ^ VID_SEED_MARKER);
    // Mostly single-object sequences (like ImageNet-VID); some two-object.
    let n_objects = 1 + usize::from(seed % 5 < 2);
    let mut scene = Scene::new(
        cfg.width,
        cfg.height,
        Texture::Blobs {
            lo: 60,
            hi: 160,
            scale: 13.0,
        },
        seed,
    );
    for k in 0..n_objects {
        let oseed = hash2(k as i64, index as i64, seed);
        let speed = group_speed(class, oseed) * sx;
        let dir = (oseed % 360) as f32 * std::f32::consts::PI / 180.0;
        let size = h * (0.10 + 0.08 * ((oseed >> 7) % 100) as f32 / 100.0);
        let start = Point::new(
            w * (0.25 + 0.5 * ((oseed >> 13) % 100) as f32 / 100.0),
            h * (0.25 + 0.5 * ((oseed >> 21) % 100) as f32 / 100.0),
        );
        let margin = (size + 2.0).min(w / 3.0).min(h / 3.0);
        let shape = if k % 2 == 0 {
            Shape::Box {
                hw: size,
                hh: size * 0.6,
            }
        } else {
            Shape::Ellipse {
                rx: size,
                ry: size * 0.7,
            }
        };
        scene = scene.with_object(SceneObject {
            shape,
            trajectory: Trajectory::Bounce {
                start,
                vel: Vec2::new(speed * dir.cos(), speed * dir.sin() * 0.7),
                w,
                h,
                margin,
            },
            deformation: if class == SpeedClass::Fast && k == 0 {
                Deformation::Pulse {
                    amp: 0.12,
                    period: 9.0,
                }
            } else {
                Deformation::None
            },
            texture: if k % 2 == 0 {
                Texture::Stripes {
                    a: 220,
                    b: 40,
                    period: 3 + k as u32,
                }
            } else {
                Texture::Checker {
                    a: 235,
                    b: 25,
                    cell: 2 + k as u32,
                }
            },
            seed: oseed,
        });
    }
    scene
}

/// Domain-separation constant so VID seeds never collide with DAVIS seeds.
const VID_SEED_MARKER: u64 = 0x01d0_1d00;

/// Generates the VID-like detection suite: `per_group` sequences in each of
/// the three speed groups, in (slow, medium, fast) order.
///
/// # Panics
/// Panics if `cfg` fails [`SuiteConfig::validate`] or `per_group` is zero.
pub fn vid_val_suite(cfg: &SuiteConfig, per_group: usize) -> Vec<Sequence> {
    cfg.validate().expect("invalid suite config");
    assert!(per_group > 0, "per_group must be non-zero");
    let mut out = Vec::with_capacity(per_group * 3);
    for class in [SpeedClass::Slow, SpeedClass::Medium, SpeedClass::Fast] {
        for i in 0..per_group {
            let scene = vid_scene(cfg, class, i);
            let name = format!("vid-{class}-{i:02}");
            out.push(Sequence::from_scene(name, &scene, cfg.frames));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_all_speed_groups() {
        let cfg = SuiteConfig::tiny();
        let suite = vid_val_suite(&cfg, 2);
        assert_eq!(suite.len(), 6);
        let slow = suite.iter().filter(|s| s.name.contains("slow")).count();
        let fast = suite.iter().filter(|s| s.name.contains("fast")).count();
        assert_eq!(slow, 2);
        assert_eq!(fast, 2);
    }

    #[test]
    fn fast_sequences_move_faster_than_slow() {
        let cfg = SuiteConfig::default();
        let suite = vid_val_suite(&cfg, 3);
        let avg = |tag: &str| {
            let v: Vec<f32> = suite
                .iter()
                .filter(|s| s.name.contains(tag))
                .map(|s| s.norm_speed)
                .collect();
            v.iter().sum::<f32>() / v.len() as f32
        };
        assert!(avg("fast") > avg("medium"));
        assert!(avg("medium") > avg("slow"));
    }

    #[test]
    fn every_frame_has_boxes() {
        let cfg = SuiteConfig::tiny();
        let suite = vid_val_suite(&cfg, 1);
        for seq in &suite {
            for (t, boxes) in seq.gt_boxes.iter().enumerate() {
                assert!(!boxes.is_empty(), "{} has no boxes at frame {t}", seq.name);
                for b in boxes {
                    assert!(b.area() > 0);
                }
            }
        }
    }

    #[test]
    fn deterministic_generation() {
        let cfg = SuiteConfig::tiny();
        let a = vid_val_suite(&cfg, 1);
        let b = vid_val_suite(&cfg, 1);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.frames, y.frames);
            assert_eq!(x.gt_boxes, y.gt_boxes);
        }
    }
}
