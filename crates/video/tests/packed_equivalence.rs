//! Property tests pinning the word-parallel packed-mask kernels to the
//! retained byte-per-pixel references (`vrd_video::mask::reference` and the
//! scalar accessors) across random masks, dimensions that straddle word
//! boundaries, and unaligned span offsets.

use proptest::prelude::*;
use vrd_video::mask::reference;
use vrd_video::{Rect, Seg2, Seg2Plane, SegMask};

/// Dimensions that exercise sub-word, exactly-one-word, word-boundary and
/// multi-word rows.
fn arb_dims() -> impl Strategy<Value = (usize, usize)> {
    (1usize..200, 1usize..8)
}

/// Deterministic pseudo-random 0/1 buffer.
fn bits(len: usize, seed: u64) -> Vec<u8> {
    (0..len)
        .map(|i| (vrd_video::texture::hash2(i as i64, 17, seed) & 1) as u8)
        .collect()
}

fn mask_from_seed(w: usize, h: usize, seed: u64) -> SegMask {
    SegMask::from_vec(w, h, bits(w * h, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn byte_roundtrip_preserves_every_pixel(dims in arb_dims(), seed in 0u64..1_000_000) {
        let (w, h) = dims;
        let bytes = bits(w * h, seed);
        let mask = SegMask::from_vec(w, h, bytes.clone());
        prop_assert_eq!(mask.to_byte_vec(), bytes.clone());
        // Scalar accessors agree with the buffer.
        for (i, &b) in bytes.iter().enumerate() {
            prop_assert_eq!(mask.get(i % w, i / w), b);
        }
        // from_bits packs the same stream identically.
        let via_bits = SegMask::from_bits(w, h, bytes.iter().map(|&b| b == 1));
        prop_assert_eq!(via_bits, mask);
    }

    #[test]
    fn popcount_and_bbox_match_scalar_scan(dims in arb_dims(), seed in 0u64..1_000_000) {
        let (w, h) = dims;
        let mask = mask_from_seed(w, h, seed);
        let bytes = mask.to_byte_vec();
        let scalar_count = bytes.iter().filter(|&&v| v == 1).count();
        prop_assert_eq!(mask.count_ones(), scalar_count);

        let mut bbox: Option<Rect> = None;
        for (i, &v) in bytes.iter().enumerate() {
            if v == 1 {
                let px = Rect::new((i % w) as i32, (i / w) as i32,
                                   (i % w) as i32 + 1, (i / w) as i32 + 1);
                bbox = Some(match bbox { Some(b) => b.union(&px), None => px });
            }
        }
        prop_assert_eq!(mask.bounding_box(), bbox);
    }

    #[test]
    fn extract_row_bits_matches_clamped_gets(
        dims in arb_dims(),
        seed in 0u64..1_000_000,
        x0 in -70i32..270,
        y in -3i32..10,
        n in 1usize..65,
    ) {
        let (w, h) = dims;
        let mask = mask_from_seed(w, h, seed);
        let bits = mask.extract_row_bits_clamped(y, x0, n);
        for j in 0..64 {
            let want = if j < n { u64::from(mask.get_clamped(x0 + j as i32, y)) } else { 0 };
            prop_assert_eq!((bits >> j) & 1, want, "bit {} at x0 {} y {} n {}", j, x0, y, n);
        }
    }

    #[test]
    fn mean_filter_matches_reference(dims in arb_dims(), seed in 0u64..1_000_000) {
        let (w, h) = dims;
        let a = mask_from_seed(w, h, seed);
        let b = mask_from_seed(w, h, seed ^ 0x5a5a);
        let packed = Seg2Plane::mean_filter(&a, &b);
        let scalar = reference::mean_filter(&a, &b);
        prop_assert_eq!(&packed, &scalar);
        // And the per-pixel semantics really are the hardware mean filter.
        for y in 0..h {
            for x in 0..w {
                prop_assert_eq!(packed.get(x, y), Seg2::from_bits(a.get(x, y), b.get(x, y)));
            }
        }
    }

    #[test]
    fn plane_to_mask_matches_reference(dims in arb_dims(), seed in 0u64..1_000_000) {
        let (w, h) = dims;
        let plane = Seg2Plane::mean_filter(
            &mask_from_seed(w, h, seed),
            &mask_from_seed(w, h, seed ^ 0xbeef),
        );
        for gray_fg in [false, true] {
            prop_assert_eq!(
                plane.to_mask(gray_fg),
                reference::plane_to_mask(&plane, gray_fg)
            );
        }
    }

    #[test]
    fn mean_filtered_row_writes_match_per_pixel_sets(
        dims in arb_dims(),
        seed in 0u64..1_000_000,
        x0_frac in 0u32..1000,
        n in 1usize..65,
        y_frac in 0u32..1000,
    ) {
        let (w, h) = dims;
        let n = n.min(w);
        let x0 = (x0_frac as usize * (w - n + 1)) / 1000;
        let y = (y_frac as usize * h) / 1000;
        let a = (vrd_video::texture::hash2(1, 2, seed) as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let b = (vrd_video::texture::hash2(3, 4, seed) as u64).wrapping_mul(0x2545_f491_4f6c_dd1d);

        // Pre-fill both targets identically so the overwrite semantics show.
        let mut packed = Seg2Plane::mean_filter(
            &mask_from_seed(w, h, seed ^ 1),
            &mask_from_seed(w, h, seed ^ 2),
        );
        let mut scalar = packed.clone();

        packed.write_mean_filtered_row(y, x0, n, a, b);
        for j in 0..n {
            let ab = ((a >> j) & 1) as u8;
            let bb = ((b >> j) & 1) as u8;
            scalar.set(x0 + j, y, Seg2::from_bits(ab, bb));
        }
        prop_assert_eq!(packed, scalar);
    }

    #[test]
    fn f32_expansion_matches_per_pixel_values(dims in arb_dims(), seed in 0u64..1_000_000) {
        let (w, h) = dims;
        let mask = mask_from_seed(w, h, seed);
        let mut out = vec![9.0f32; w * h];
        mask.expand_f32_into(&mut out);
        for y in 0..h {
            for x in 0..w {
                prop_assert_eq!(out[y * w + x], f32::from(mask.get(x, y)));
            }
        }
        let plane = Seg2Plane::mean_filter(&mask, &mask_from_seed(w, h, seed ^ 7));
        plane.expand_f32_into(&mut out);
        for y in 0..h {
            for x in 0..w {
                prop_assert_eq!(out[y * w + x], plane.get(x, y).to_f32());
            }
        }
    }

    #[test]
    fn fill_rect_matches_per_pixel_fill(
        dims in arb_dims(),
        x0 in -10i32..210, y0 in -3i32..10, dw in 0i32..80, dh in 0i32..8,
    ) {
        let (w, h) = dims;
        let r = Rect::new(x0, y0, x0 + dw, y0 + dh);
        let mut packed = SegMask::new(w, h);
        packed.fill_rect(r);
        let mut scalar = SegMask::new(w, h);
        let c = r.clamped(w, h);
        for y in c.y0..c.y1 {
            for x in c.x0..c.x1 {
                scalar.set(x as usize, y as usize, 1);
            }
        }
        prop_assert_eq!(packed, scalar);
    }
}
