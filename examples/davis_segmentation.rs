//! Video segmentation across the DAVIS-like validation suite — the paper's
//! motivating workload (video editing).
//!
//! ```text
//! cargo run --release --example davis_segmentation [video-name ...]
//! ```
//!
//! With no arguments, runs a representative subset (a slow, a medium, a
//! fast and a deforming video); pass sequence names (e.g. `cows parkour`)
//! to choose. Compares the accuracy of all four segmentation schemes and
//! the simulated time of each, per video.

use vr_dann::baselines::{run_dff, run_favos, run_osvos, DFF_KEY_INTERVAL};
use vr_dann::{TrainTask, VrDann, VrDannConfig};
use vrd_metrics::score_sequence;
use vrd_sim::{simulate, ExecMode, ParallelOptions, SimConfig};
use vrd_video::davis::{davis_sequence, davis_train_suite, davis_val_names, SuiteConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let requested: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<String> = if requested.is_empty() {
        ["cows", "dog", "parkour", "breakdance"]
            .map(String::from)
            .to_vec()
    } else {
        for name in &requested {
            if !davis_val_names().contains(&name.as_str()) {
                return Err(format!(
                    "unknown sequence {name:?}; choose from: {}",
                    davis_val_names().join(", ")
                )
                .into());
            }
        }
        requested
    };

    let cfg = SuiteConfig::default();
    eprintln!("training NN-S ...");
    let model = VrDann::train(
        &davis_train_suite(&cfg, 4),
        TrainTask::Segmentation,
        VrDannConfig::default(),
    )?;
    let sim = SimConfig::default();

    println!(
        "{:<14} {:>7} | {:>11} {:>11} {:>11} {:>11} | {:>9}",
        "video", "B-ratio", "OSVOS IoU", "DFF IoU", "FAVOS IoU", "VRDANN IoU", "speedup"
    );
    for name in &names {
        let seq = davis_sequence(name, &cfg)?;
        let encoded = model.encode(&seq)?;
        let vr = model.run_segmentation(&seq, &encoded)?;
        let favos = run_favos(&seq, &encoded, 1);
        let osvos = run_osvos(&seq, &encoded, 1);
        let dff = run_dff(&seq, &encoded, DFF_KEY_INTERVAL, 1);

        let iou = |masks: &[vrd_video::SegMask]| score_sequence(masks, &seq.gt_masks).iou;
        let r_favos = simulate(&favos.trace, ExecMode::InOrder, &sim);
        let r_par = simulate(
            &vr.trace,
            ExecMode::VrDannParallel(ParallelOptions::default()),
            &sim,
        );
        println!(
            "{:<14} {:>6.0}% | {:>11.3} {:>11.3} {:>11.3} {:>11.3} | {:>8.2}x",
            name,
            encoded.stats.b_ratio() * 100.0,
            iou(&osvos.masks),
            iou(&dff.masks),
            iou(&favos.masks),
            iou(&vr.masks),
            r_par.speedup_vs(&r_favos),
        );
    }
    Ok(())
}
