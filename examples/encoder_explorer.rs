//! Encoder-interaction explorer (§III-C): how the B-frame ratio, the search
//! interval `n` and the encoding standard shape VR-DANN's behaviour on one
//! video.
//!
//! ```text
//! cargo run --release --example encoder_explorer [video-name]
//! ```

use vr_dann::{TrainTask, VrDann, VrDannConfig};
use vrd_codec::{BFrameMode, CodecConfig, SearchInterval, Standard};
use vrd_metrics::score_sequence;
use vrd_video::davis::{davis_sequence, davis_train_suite, SuiteConfig};

fn evaluate(
    label: &str,
    codec: CodecConfig,
    seq: &vrd_video::Sequence,
    train: &[vrd_video::Sequence],
) -> Result<(), Box<dyn std::error::Error>> {
    let model = VrDann::train(
        train,
        TrainTask::Segmentation,
        VrDannConfig {
            codec,
            ..VrDannConfig::default()
        },
    )?;
    let encoded = model.encode(seq)?;
    let run = model.run_segmentation(seq, &encoded)?;
    let scores = score_sequence(&run.masks, &seq.gt_masks);
    println!(
        "{:<26} B-ratio {:>4.0}%  refs/B {:>4.1}  compression {:>4.1}x  F {:.3}  IoU {:.3}",
        label,
        encoded.stats.b_ratio() * 100.0,
        encoded.stats.mean_refs_per_b(),
        encoded.stats.compression_ratio(),
        scores.f_score,
        scores.iou,
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "dog".into());
    let cfg = SuiteConfig::default();
    let seq = davis_sequence(&name, &cfg)?;
    let train = davis_train_suite(&cfg, 3);
    let base = CodecConfig::default();

    println!("-- B-frame ratio (paper Fig. 15) --");
    for b in 1..=3u8 {
        evaluate(
            &format!("B run {b}"),
            CodecConfig {
                b_frames: BFrameMode::Fixed(b),
                ..base
            },
            &seq,
            &train,
        )?;
    }
    evaluate("auto B ratio", base, &seq, &train)?;

    println!("-- search interval n (paper Fig. 16) --");
    for n in [1u8, 5, 9] {
        evaluate(
            &format!("n = {n}"),
            CodecConfig {
                search_interval: SearchInterval::Fixed(n),
                ..base
            },
            &seq,
            &train,
        )?;
    }

    println!("-- encoding standard (paper Fig. 17) --");
    for standard in [Standard::H264, Standard::H265] {
        evaluate(
            &standard.to_string(),
            CodecConfig { standard, ..base },
            &seq,
            &train,
        )?;
    }
    Ok(())
}
