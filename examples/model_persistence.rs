//! Train once, ship the weights: NN-S model export/import.
//!
//! ```text
//! cargo run --release --example model_persistence
//! ```
//!
//! Trains NN-S, serialises it to a byte-stable artefact, reloads it into a
//! fresh pipeline and verifies the two produce identical segmentations —
//! the deployment flow of an SoC vendor shipping calibrated weights.

use vr_dann::{TrainTask, VrDann, VrDannConfig};
use vrd_video::davis::{davis_sequence, davis_train_suite, SuiteConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SuiteConfig::default();
    println!("training NN-S ...");
    let trained = VrDann::train(
        &davis_train_suite(&cfg, 3),
        TrainTask::Segmentation,
        VrDannConfig::default(),
    )?;

    let artefact = trained.export_nns();
    println!(
        "exported {} bytes ({} parameters) — byte-stable across runs",
        artefact.len(),
        trained.nns().n_params()
    );

    let deployed = VrDann::from_parts(*trained.config(), &artefact)?;
    let seq = davis_sequence("goat", &cfg)?;
    let encoded = trained.encode(&seq)?;
    let a = trained.run_segmentation(&seq, &encoded)?;
    let b = deployed.run_segmentation(&seq, &encoded)?;
    assert_eq!(
        a.masks, b.masks,
        "deployed model must match the trained one"
    );
    println!(
        "deployed pipeline reproduces the trained pipeline exactly on '{}' ({} frames)",
        seq.name,
        seq.len()
    );
    Ok(())
}
