//! Quickstart: the complete VR-DANN flow on one video, end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a DAVIS-like sequence, trains NN-S (the paper's two epochs),
//! encodes the video, runs the decoder-assisted pipeline, and reports
//! accuracy plus the simulated speed-up over FAVOS.

use vr_dann::baselines::run_favos;
use vr_dann::{TrainTask, VrDann, VrDannConfig};
use vrd_metrics::score_sequence;
use vrd_sim::{simulate, ExecMode, ParallelOptions, SimConfig};
use vrd_video::davis::{davis_sequence, davis_train_suite, SuiteConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SuiteConfig::default();

    println!("== 1. Train NN-S (3-layer refinement network, 2 epochs) ==");
    let train_seqs = davis_train_suite(&cfg, 4);
    let model = VrDann::train(
        &train_seqs,
        TrainTask::Segmentation,
        VrDannConfig::default(),
    )?;
    println!(
        "   NN-S has {} parameters (NN-L equivalents have millions)",
        model.nns().n_params()
    );

    println!("== 2. Encode the video (H.265 profile, auto B ratio) ==");
    let seq = davis_sequence("cows", &cfg)?;
    let encoded = model.encode(&seq)?;
    println!(
        "   {} frames, {:.0}% B-frames, {:.1}x compression, up to {} reference frames per B-frame",
        seq.len(),
        encoded.stats.b_ratio() * 100.0,
        encoded.stats.compression_ratio(),
        encoded.stats.max_refs_per_b()
    );

    println!("== 3. Run VR-DANN (decode anchors, reconstruct + refine B-frames) ==");
    let vr = model.run_segmentation(&seq, &encoded)?;
    let vr_scores = score_sequence(&vr.masks, &seq.gt_masks);

    println!("== 4. Compare against FAVOS (large network on every frame) ==");
    let favos = run_favos(&seq, &encoded, 1);
    let favos_scores = score_sequence(&favos.masks, &seq.gt_masks);
    println!(
        "   accuracy  FAVOS   F={:.3} IoU={:.3}",
        favos_scores.f_score, favos_scores.iou
    );
    println!(
        "   accuracy  VR-DANN F={:.3} IoU={:.3}",
        vr_scores.f_score, vr_scores.iou
    );

    println!("== 5. Simulate both on the SoC model ==");
    let sim = SimConfig::default();
    let r_favos = simulate(&favos.trace, ExecMode::InOrder, &sim);
    let r_serial = simulate(&vr.trace, ExecMode::VrDannSerial, &sim);
    let r_par = simulate(
        &vr.trace,
        ExecMode::VrDannParallel(ParallelOptions::default()),
        &sim,
    );
    println!(
        "   FAVOS             {:8.2} ms  ({:5.1} fps)",
        r_favos.total_ms(),
        r_favos.fps
    );
    println!(
        "   VR-DANN-serial    {:8.2} ms  ({:5.1} fps, {:.2}x)",
        r_serial.total_ms(),
        r_serial.fps,
        r_serial.speedup_vs(&r_favos)
    );
    println!(
        "   VR-DANN-parallel  {:8.2} ms  ({:5.1} fps, {:.2}x, {:.2}x energy reduction)",
        r_par.total_ms(),
        r_par.fps,
        r_par.speedup_vs(&r_favos),
        r_par.energy_reduction_vs(&r_favos)
    );
    Ok(())
}
