//! Video object detection on the VID-like suite — the paper's surveillance
//! workload (§III-B, Fig. 11).
//!
//! ```text
//! cargo run --release --example vid_detection
//! ```
//!
//! Runs SELSA, Euphrates-2/-4 and VR-DANN on multi-object sequences across
//! the three speed groups, reporting per-sequence average precision and the
//! simulated time of each scheme.

use vr_dann::baselines::{run_euphrates, run_selsa};
use vr_dann::{DetectionRun, TrainTask, VrDann, VrDannConfig};
use vrd_metrics::{average_precision, FrameDetections};
use vrd_sim::{simulate, ExecMode, ParallelOptions, SimConfig};
use vrd_video::davis::SuiteConfig;
use vrd_video::vid::vid_val_suite;
use vrd_video::Sequence;

fn ap(run: &DetectionRun, seq: &Sequence) -> f64 {
    let frames: Vec<FrameDetections> = run
        .detections
        .iter()
        .zip(&seq.gt_boxes)
        .map(|(dets, gts)| FrameDetections {
            detections: dets.clone(),
            ground_truth: gts.clone(),
        })
        .collect();
    average_precision(&frames)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SuiteConfig::default();
    eprintln!("training NN-S for detection (rectangle masks) ...");
    let train_cfg = SuiteConfig {
        seed: cfg.seed ^ 0xdead,
        ..cfg
    };
    let model = VrDann::train(
        &vid_val_suite(&train_cfg, 2),
        TrainTask::Detection,
        VrDannConfig::default(),
    )?;

    let suite = vid_val_suite(&cfg, 2);
    let sim = SimConfig::default();
    println!(
        "{:<16} {:>7} | {:>9} {:>9} {:>9} {:>9} | {:>12}",
        "sequence", "objects", "SELSA", "Euphr-2", "Euphr-4", "VR-DANN", "vs Euphr-2"
    );
    for seq in &suite {
        let encoded = model.encode(seq)?;
        let vr = model.run_detection(seq, &encoded)?;
        let selsa = run_selsa(seq, &encoded, 2);
        let e2 = run_euphrates(seq, &encoded, 2, 2);
        let e4 = run_euphrates(seq, &encoded, 4, 2);

        let r_e2 = simulate(&e2.trace, ExecMode::InOrder, &sim);
        let r_vr = simulate(
            &vr.trace,
            ExecMode::VrDannParallel(ParallelOptions::default()),
            &sim,
        );
        println!(
            "{:<16} {:>7} | {:>9.3} {:>9.3} {:>9.3} {:>9.3} | {:>11.2}x",
            seq.name,
            seq.gt_boxes[0].len(),
            ap(&selsa, seq),
            ap(&e2, seq),
            ap(&e4, seq),
            ap(&vr, seq),
            r_vr.speedup_vs(&r_e2),
        );
    }
    Ok(())
}
