//! # vrdann-suite — the VR-DANN reproduction, in one crate
//!
//! Umbrella crate re-exporting the full stack of the MICRO 2020 VR-DANN
//! reproduction. Depend on the individual crates for finer-grained builds:
//!
//! * [`vrd_video`] — synthetic video + ground truth (DAVIS/VID stand-ins)
//! * [`vrd_codec`] — H.264/H.265-style codec with exposed motion vectors
//! * [`vrd_flow`] — optical flow (FlowNet stand-in for DFF)
//! * [`vrd_nn`] — CNN substrate: trainable NN-S, NN-L oracles
//! * [`vrd_metrics`] — IoU / F-score / mAP
//! * [`vr_dann`] — the paper's algorithm and all baselines
//! * [`vrd_sim`] — the SoC simulator (NPU, decoder, DRAM, agent unit)
//! * [`vrd_serve`] — multi-stream serving: sessions, shared-NPU scheduling,
//!   admission control, and the fleet layer (trace-driven load over
//!   sharded virtual NPUs with affinity placement and autoscaling)
//! * [`vrd_bench`] — the experiment harness regenerating every figure
//!
//! The runnable examples live in this crate:
//! `cargo run --release --example quickstart`.

pub use vr_dann;
pub use vrd_bench;
pub use vrd_codec;
pub use vrd_flow;
pub use vrd_metrics;
pub use vrd_nn;
pub use vrd_serve;
pub use vrd_sim;
pub use vrd_video;
