//! End-to-end determinism: every published number must reproduce
//! bit-for-bit, so every layer of the stack must be a pure function of its
//! seeds.

use vr_dann::{TrainTask, VrDann, VrDannConfig};
use vrd_codec::{CodecConfig, Encoder};
use vrd_sim::{simulate, ExecMode, ParallelOptions, SimConfig};
use vrd_video::davis::{davis_sequence, davis_train_suite, SuiteConfig};

fn build_model() -> VrDann {
    let cfg = SuiteConfig::tiny();
    VrDann::train(
        &davis_train_suite(&cfg, 2),
        TrainTask::Segmentation,
        VrDannConfig {
            nns_hidden: 4,
            ..VrDannConfig::default()
        },
    )
    .expect("training succeeds")
}

#[test]
fn bitstreams_are_bit_stable() {
    let seq = davis_sequence("dog", &SuiteConfig::tiny()).unwrap();
    let a = Encoder::new(CodecConfig::default())
        .encode(&seq.frames)
        .unwrap();
    let b = Encoder::new(CodecConfig::default())
        .encode(&seq.frames)
        .unwrap();
    assert_eq!(a.bitstream, b.bitstream);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn independently_trained_pipelines_agree_everywhere() {
    let m1 = build_model();
    let m2 = build_model();
    // Same seeds -> identical weights -> identical exported artefacts.
    assert_eq!(m1.export_nns(), m2.export_nns());

    let seq = davis_sequence("libby", &SuiteConfig::tiny()).unwrap();
    let e1 = m1.encode(&seq).unwrap();
    let e2 = m2.encode(&seq).unwrap();
    assert_eq!(e1.bitstream, e2.bitstream);

    let r1 = m1.run_segmentation(&seq, &e1).unwrap();
    let r2 = m2.run_segmentation(&seq, &e2).unwrap();
    assert_eq!(r1.masks, r2.masks);
    assert_eq!(r1.trace, r2.trace);

    // And the simulator is deterministic on identical traces.
    let sim = SimConfig::default();
    let mode = ExecMode::VrDannParallel(ParallelOptions::default());
    let s1 = simulate(&r1.trace, mode, &sim);
    let s2 = simulate(&r2.trace, mode, &sim);
    assert_eq!(s1, s2);
}

#[test]
fn different_seeds_actually_differ() {
    let base = SuiteConfig::tiny();
    let other = SuiteConfig {
        seed: base.seed ^ 0xff,
        ..base
    };
    let a = davis_sequence("cows", &base).unwrap();
    let b = davis_sequence("cows", &other).unwrap();
    assert_ne!(a.frames, b.frames, "seed must influence generation");
}
