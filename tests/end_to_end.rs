//! Cross-crate integration: the complete VR-DANN stack from scene synthesis
//! through codec, recognition, metrics and the architecture simulator.

use vr_dann::baselines::{run_dff, run_euphrates, run_favos, run_osvos, run_selsa};
use vr_dann::{ComputeKind, TrainTask, VrDann, VrDannConfig};
use vrd_metrics::{average_precision, score_sequence, FrameDetections};
use vrd_sim::{simulate, ExecMode, ParallelOptions, SimConfig};
use vrd_video::davis::{davis_sequence, davis_train_suite, SuiteConfig};
use vrd_video::vid::vid_val_suite;

fn trained_model(task: TrainTask) -> (VrDann, SuiteConfig) {
    let cfg = SuiteConfig::tiny();
    let train = match task {
        TrainTask::Segmentation => davis_train_suite(&cfg, 2),
        TrainTask::Detection => vid_val_suite(
            &SuiteConfig {
                seed: cfg.seed ^ 1,
                ..cfg
            },
            1,
        ),
    };
    let model = VrDann::train(
        &train,
        task,
        VrDannConfig {
            nns_hidden: 4,
            ..VrDannConfig::default()
        },
    )
    .expect("training succeeds");
    (model, cfg)
}

#[test]
fn segmentation_stack_end_to_end() {
    let (model, cfg) = trained_model(TrainTask::Segmentation);
    let seq = davis_sequence("cows", &cfg).unwrap();
    let encoded = model.encode(&seq).unwrap();
    let vr = model.run_segmentation(&seq, &encoded).unwrap();

    // Accuracy: clearly better than predicting nothing.
    let scores = score_sequence(&vr.masks, &seq.gt_masks);
    assert!(scores.iou > 0.5, "IoU {:.3}", scores.iou);

    // The trace mirrors the GOP: B-frames refined, anchors through NN-L.
    let b_in_trace = vr
        .trace
        .frames
        .iter()
        .filter(|f| matches!(f.kind, ComputeKind::NnSRefine { .. }))
        .count();
    assert_eq!(b_in_trace, encoded.stats.b_frames);

    // Simulation: parallel is the fastest and FAVOS is slower than both.
    let sim = SimConfig::default();
    let favos = run_favos(&seq, &encoded, 1);
    let r_favos = simulate(&favos.trace, ExecMode::InOrder, &sim);
    let r_serial = simulate(&vr.trace, ExecMode::VrDannSerial, &sim);
    let r_par = simulate(
        &vr.trace,
        ExecMode::VrDannParallel(ParallelOptions::default()),
        &sim,
    );
    assert!(r_par.total_ns <= r_serial.total_ns);
    assert!(r_serial.total_ns < r_favos.total_ns);
    assert!(r_par.energy.total_mj() < r_favos.energy.total_mj());

    // The paper's headline mechanism: B-frame reconstruction is hidden.
    assert!(
        r_par.recon_stall_ns < 0.05 * r_par.total_ns,
        "reconstruction not hidden: {} of {}",
        r_par.recon_stall_ns,
        r_par.total_ns
    );
}

#[test]
fn all_segmentation_schemes_run_on_the_same_bitstream() {
    let (model, cfg) = trained_model(TrainTask::Segmentation);
    let seq = davis_sequence("libby", &cfg).unwrap();
    let encoded = model.encode(&seq).unwrap();
    let vr = model.run_segmentation(&seq, &encoded).unwrap();
    let favos = run_favos(&seq, &encoded, 1);
    let osvos = run_osvos(&seq, &encoded, 1);
    let dff = run_dff(&seq, &encoded, 5, 1);
    for (name, masks) in [
        ("vrdann", &vr.masks),
        ("favos", &favos.masks),
        ("osvos", &osvos.masks),
        ("dff", &dff.masks),
    ] {
        assert_eq!(masks.len(), seq.len(), "{name} produced wrong length");
        let s = score_sequence(masks, &seq.gt_masks);
        assert!(s.iou > 0.2, "{name} collapsed: {:.3}", s.iou);
    }
}

#[test]
fn detection_stack_end_to_end() {
    let (model, cfg) = trained_model(TrainTask::Detection);
    let suite = vid_val_suite(&cfg, 1);
    for seq in &suite {
        let encoded = model.encode(seq).unwrap();
        let vr = model.run_detection(seq, &encoded).unwrap();
        let selsa = run_selsa(seq, &encoded, 2);
        let e2 = run_euphrates(seq, &encoded, 2, 2);
        let to_frames = |runs: &Vec<Vec<vrd_video::Detection>>| -> Vec<FrameDetections> {
            runs.iter()
                .zip(&seq.gt_boxes)
                .map(|(dets, gts)| FrameDetections {
                    detections: dets.clone(),
                    ground_truth: gts.clone(),
                })
                .collect()
        };
        let ap_vr = average_precision(&to_frames(&vr.detections));
        let ap_selsa = average_precision(&to_frames(&selsa.detections));
        let ap_e2 = average_precision(&to_frames(&e2.detections));
        assert!(ap_selsa > 0.5, "{}: selsa {:.3}", seq.name, ap_selsa);
        assert!(ap_vr > 0.2, "{}: vrdann {:.3}", seq.name, ap_vr);
        assert!(ap_e2 > 0.2, "{}: euphrates {:.3}", seq.name, ap_e2);
    }
}

#[test]
fn codec_sweeps_run_through_the_full_stack() {
    use vrd_codec::{BFrameMode, CodecConfig, SearchInterval, Standard};
    let cfg = SuiteConfig::tiny();
    let train = davis_train_suite(&cfg, 2);
    let seq = davis_sequence("dog", &cfg).unwrap();
    for codec in [
        CodecConfig {
            b_frames: BFrameMode::Fixed(2),
            ..CodecConfig::default()
        },
        CodecConfig {
            search_interval: SearchInterval::Fixed(1),
            ..CodecConfig::default()
        },
        CodecConfig {
            standard: Standard::H264,
            ..CodecConfig::default()
        },
    ] {
        let model = VrDann::train(
            &train,
            TrainTask::Segmentation,
            VrDannConfig {
                codec,
                nns_hidden: 4,
                ..VrDannConfig::default()
            },
        )
        .unwrap();
        let encoded = model.encode(&seq).unwrap();
        let run = model.run_segmentation(&seq, &encoded).unwrap();
        let s = score_sequence(&run.masks, &seq.gt_masks);
        assert!(s.iou > 0.4, "{codec:?} collapsed: {:.3}", s.iou);
    }
}

#[test]
fn pipeline_is_robust_to_lighting_drift() {
    use vrd_video::{Point, Scene, SceneObject, Sequence, Shape, Texture, Trajectory, Vec2};
    // A scene with strong exposure oscillation: pixel values change every
    // frame, but motion-vector propagation of *segmentation* is unaffected
    // because it never touches pixel values.
    let base = Scene::new(
        64,
        48,
        Texture::Blobs {
            lo: 60,
            hi: 170,
            scale: 10.0,
        },
        21,
    )
    .with_object(SceneObject {
        shape: Shape::Ellipse { rx: 9.0, ry: 6.0 },
        trajectory: Trajectory::Bounce {
            start: Point::new(30.0, 24.0),
            vel: Vec2::new(1.2, 0.5),
            w: 64.0,
            h: 48.0,
            margin: 11.0,
        },
        deformation: vrd_video::Deformation::None,
        texture: Texture::Checker {
            a: 220,
            b: 40,
            cell: 3,
        },
        seed: 5,
    });
    let lit = base.clone().with_lighting(0.25, 10.0);
    let seq_plain = Sequence::from_scene("plain", &base, 16);
    let seq_lit = Sequence::from_scene("lit", &lit, 16);

    let (mut model, _) = trained_model(TrainTask::Segmentation);
    let score = |model: &mut VrDann, seq: &vrd_video::Sequence| {
        let encoded = model.encode(seq).unwrap();
        let run = model.run_segmentation(seq, &encoded).unwrap();
        score_sequence(&run.masks, &seq.gt_masks).iou
    };
    let iou_plain = score(&mut model, &seq_plain);
    let iou_lit = score(&mut model, &seq_lit);
    assert!(iou_plain > 0.6, "plain scene collapsed: {iou_plain:.3}");
    assert!(
        iou_lit > iou_plain - 0.08,
        "lighting drift broke the pipeline: {iou_lit:.3} vs {iou_plain:.3}"
    );
}

#[test]
fn pipeline_survives_object_occlusion() {
    use vrd_video::{Point, Scene, SceneObject, Sequence, Shape, Texture, Trajectory, Vec2};
    // Two objects on crossing paths: the smaller one passes behind the
    // larger (paint order = occlusion order). Motion vectors through the
    // crossing are ambiguous; the pipeline must degrade gracefully, not
    // collapse.
    let scene = Scene::new(
        64,
        48,
        Texture::Blobs {
            lo: 60,
            hi: 170,
            scale: 10.0,
        },
        31,
    )
    .with_object(SceneObject {
        // Occludee: moves right, passes behind the occluder mid-sequence.
        shape: Shape::Ellipse { rx: 6.0, ry: 5.0 },
        trajectory: Trajectory::Linear {
            start: Point::new(12.0, 24.0),
            vel: Vec2::new(2.2, 0.0),
        },
        deformation: vrd_video::Deformation::None,
        texture: Texture::Checker {
            a: 230,
            b: 30,
            cell: 2,
        },
        seed: 8,
    })
    .with_object(SceneObject {
        // Occluder: static, drawn on top.
        shape: Shape::Box { hw: 5.0, hh: 9.0 },
        trajectory: Trajectory::Linear {
            start: Point::new(34.0, 24.0),
            vel: Vec2::new(0.0, 0.0),
        },
        deformation: vrd_video::Deformation::None,
        texture: Texture::Stripes {
            a: 210,
            b: 50,
            period: 3,
        },
        seed: 9,
    });
    let seq = Sequence::from_scene("occlusion", &scene, 16);
    // Sanity: the occludee is actually hidden at some point (its union
    // with the occluder shrinks the total mask area mid-sequence).
    let areas: Vec<usize> = seq.gt_masks.iter().map(|m| m.count_ones()).collect();
    let min = *areas.iter().min().unwrap();
    let max = *areas.iter().max().unwrap();
    assert!(min < max, "occlusion should change the visible area");

    let (model, _) = trained_model(TrainTask::Segmentation);
    let encoded = model.encode(&seq).unwrap();
    let run = model.run_segmentation(&seq, &encoded).unwrap();
    let iou = score_sequence(&run.masks, &seq.gt_masks).iou;
    assert!(iou > 0.55, "occlusion collapsed the pipeline: {iou:.3}");
}
