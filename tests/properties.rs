//! Property-based tests of the core invariants, spanning the geometry,
//! codec, reconstruction and metrics layers.

use proptest::prelude::*;
use std::collections::BTreeMap;
use vr_dann::{extract_components, reconstruct_b_frame, ReconConfig};
use vrd_codec::decoder::BFrameInfo;
use vrd_codec::{CodecConfig, Decoder, Encoder, MvRecord, RefMv};
use vrd_metrics::{average_precision, FrameDetections, PixelCounts};
use vrd_video::{Detection, Frame, Rect, Seg2, SegMask};

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0i32..40, 0i32..40, 1i32..24, 1i32..24).prop_map(|(x, y, w, h)| Rect::from_size(x, y, w, h))
}

proptest! {
    #[test]
    fn rect_iou_is_symmetric_and_bounded(a in arb_rect(), b in arb_rect()) {
        let ab = a.iou(&b);
        let ba = b.iou(&a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!((a.iou(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rect_union_contains_both(a in arb_rect(), b in arb_rect()) {
        let u = a.union(&b);
        prop_assert_eq!(u.intersect(&a), a);
        prop_assert_eq!(u.intersect(&b), b);
        prop_assert!(u.area() >= a.area().max(b.area()));
    }

    #[test]
    fn seg2_mean_filter_is_commutative(a in 0u8..2, b in 0u8..2) {
        prop_assert_eq!(Seg2::from_bits(a, b), Seg2::from_bits(b, a));
        // Agreement yields the shared value; disagreement yields gray.
        if a == b {
            prop_assert_ne!(Seg2::from_bits(a, b), Seg2::Gray);
        } else {
            prop_assert_eq!(Seg2::from_bits(a, b), Seg2::Gray);
        }
    }

    #[test]
    fn pixel_counts_iou_never_exceeds_fscore(seed in 0u64..1000) {
        // IoU <= F-score is a classic identity (F = 2*IoU / (1 + IoU)).
        let mut pred = SegMask::new(16, 16);
        let mut gt = SegMask::new(16, 16);
        for i in 0..256usize {
            let h = vrd_video::texture::hash2(i as i64, 0, seed);
            if h & 1 == 1 { pred.set(i % 16, i / 16, 1); }
            if h & 2 == 2 { gt.set(i % 16, i / 16, 1); }
        }
        let c = PixelCounts::tally(&pred, &gt);
        prop_assert!(c.iou() <= c.f_score() + 1e-12);
        let expected_f = 2.0 * c.iou() / (1.0 + c.iou());
        prop_assert!((c.f_score() - expected_f).abs() < 1e-9);
    }

    #[test]
    fn average_precision_is_bounded(n_det in 0usize..6, n_gt in 0usize..4, seed in 0u64..500) {
        let h = |i: i64, s: i64| vrd_video::texture::hash2(i, s, seed);
        let detections = (0..n_det)
            .map(|i| Detection::new(
                Rect::from_size((h(i as i64, 1) % 30) as i32, (h(i as i64, 2) % 30) as i32, 8, 8),
                (h(i as i64, 3) % 100) as f32 / 100.0,
            ))
            .collect();
        let ground_truth = (0..n_gt)
            .map(|i| Rect::from_size((h(i as i64, 4) % 30) as i32, (h(i as i64, 5) % 30) as i32, 8, 8))
            .collect();
        let ap = average_precision(&[FrameDetections { detections, ground_truth }]);
        prop_assert!((0.0..=1.0).contains(&ap), "ap = {ap}");
    }

    #[test]
    fn components_of_disjoint_boxes_roundtrip(
        x1 in 0i32..10, y1 in 0i32..10, x2 in 24i32..34, y2 in 24i32..34,
        w in 3i32..8, h in 3i32..8,
    ) {
        let a = Rect::from_size(x1, y1, w, h);
        let b = Rect::from_size(x2, y2, w, h);
        let mask = vr_dann::boxes_to_mask(&[a, b], 48, 48);
        let dets = extract_components(&mask, 1);
        prop_assert_eq!(dets.len(), 2);
        let rects: Vec<Rect> = dets.iter().map(|d| d.rect).collect();
        prop_assert!(rects.contains(&a));
        prop_assert!(rects.contains(&b));
    }

    #[test]
    fn identity_motion_vectors_reproduce_the_reference(seed in 0u64..200) {
        // A B-frame whose every block points at the co-located block of one
        // reference must reconstruct exactly that reference's segmentation.
        let (w, h, mb) = (32usize, 16usize, 8usize);
        let mut reference = SegMask::new(w, h);
        for i in 0..w * h {
            if vrd_video::texture::hash2(i as i64, 9, seed) & 1 == 1 {
                reference.set(i % w, i / w, 1);
            }
        }
        let mvs: Vec<MvRecord> = (0..h).step_by(mb).flat_map(|y| {
            (0..w).step_by(mb).map(move |x| MvRecord {
                dst_x: x as u32,
                dst_y: y as u32,
                ref0: RefMv { frame: 0, src_x: x as i32, src_y: y as i32 },
                ref1: None,
            })
        }).collect();
        let info = BFrameInfo { display_idx: 1, mvs, intra_blocks: vec![] };
        let mut refs = BTreeMap::new();
        refs.insert(0u32, reference.clone());
        let plane = reconstruct_b_frame(&info, &refs, w, h, mb, &ReconConfig::default()).unwrap();
        prop_assert_eq!(plane.to_mask(false), reference);
    }
}

/// Random-ish frame built from the deterministic hash (proptest shrinks the
/// seed, not the pixels, keeping cases reproducible).
fn hash_frame(w: usize, h: usize, seed: u64) -> Frame {
    Frame::from_vec(
        w,
        h,
        (0..w * h)
            .map(|i| (vrd_video::texture::hash2(i as i64, 77, seed) % 256) as u8)
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn codec_roundtrip_on_noise_frames(seed in 0u64..100, n_frames in 2usize..6) {
        // Pure-noise video is the codec's worst case: it must still decode
        // to high fidelity (bounded only by the quantiser).
        let frames: Vec<Frame> = (0..n_frames).map(|i| hash_frame(32, 16, seed ^ (i as u64) << 32)).collect();
        let encoded = Encoder::new(CodecConfig::default()).encode(&frames).unwrap();
        let decoded = Decoder::new().decode(&encoded.bitstream).unwrap();
        prop_assert_eq!(decoded.frames.len(), frames.len());
        for (orig, rec) in frames.iter().zip(&decoded.frames) {
            let max_err = orig.as_slice().iter().zip(rec.as_slice())
                .map(|(&a, &b)| (a as i32 - b as i32).abs())
                .max().unwrap();
            // Quantiser 8: reconstruction error is bounded by q/2 + rounding.
            prop_assert!(max_err <= 8, "max error {max_err}");
        }
        // Recognition mode sees the same anchors as the full decode.
        let rec = Decoder::new().decode_for_recognition(&encoded.bitstream).unwrap();
        for (d, frame) in &rec.anchors {
            prop_assert_eq!(frame, &decoded.frames[*d as usize]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Corruption robustness: flipping any byte of a valid stream must make
    /// the decoder either return a clean error or decode successfully (some
    /// corruptions only perturb residual values) — never panic, hang or
    /// overrun.
    #[test]
    fn corrupt_bitstreams_never_panic(seed in 0u64..20, victim in 0usize..10_000) {
        let frames: Vec<Frame> = (0..3).map(|i| hash_frame(16, 16, seed ^ (i as u64) << 17)).collect();
        let encoded = Encoder::new(CodecConfig::default()).encode(&frames).unwrap();
        let mut bytes = encoded.bitstream.to_vec();
        let idx = victim % bytes.len();
        bytes[idx] ^= 0x5a;
        let corrupted = bytes::Bytes::from(bytes);
        let decoder = Decoder::new();
        let _ = decoder.decode(&corrupted);
        let _ = decoder.decode_for_recognition(&corrupted);
        let _ = decoder.inspect(&corrupted);
    }
}
