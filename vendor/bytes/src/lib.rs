//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`] (cheaply cloneable, shared, with a read cursor),
//! [`BytesMut`] (growable write buffer) and the minimal [`Buf`]/[`BufMut`]
//! traits the codec's bitstream layer relies on.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer with a read cursor.
///
/// Cloning shares the underlying allocation; advancing the cursor via
/// [`Buf`] only moves this handle's view.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    pos: usize,
    end: usize,
}

impl Default for Bytes {
    fn default() -> Self {
        Self::from(Vec::new())
    }
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A buffer viewing a static byte string.
    pub fn from_static(data: &'static [u8]) -> Self {
        Self::from(data.to_vec())
    }

    /// Remaining length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.pos
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the remaining bytes into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// The remaining bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..self.end]
    }

    /// A sub-view of the remaining bytes, sharing the allocation.
    ///
    /// # Panics
    /// Panics if the range is out of bounds of the remaining bytes.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        Self {
            data: Arc::clone(&self.data),
            pos: self.pos + start,
            end: self.pos + end,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Self {
            data: Arc::new(data),
            pos: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// A growable byte buffer for writers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// Sequential byte reading.
pub trait Buf {
    /// Bytes not yet consumed.
    fn remaining(&self) -> usize;

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Skips `n` bytes.
    ///
    /// # Panics
    /// Panics if fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    ///
    /// # Panics
    /// Panics if no bytes remain.
    fn get_u8(&mut self) -> u8;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        self.pos += n;
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "read past end of buffer");
        let b = self.data[self.pos];
        self.pos += 1;
        b
    }
}

/// Sequential byte writing.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_roundtrip() {
        let mut w = BytesMut::new();
        for v in 0..10u8 {
            w.put_u8(v);
        }
        assert_eq!(w.len(), 10);
        let mut b = w.freeze();
        let copy = b.clone();
        for v in 0..10u8 {
            assert!(b.has_remaining());
            assert_eq!(b.get_u8(), v);
        }
        assert!(!b.has_remaining());
        // The clone's cursor is independent.
        assert_eq!(copy.remaining(), 10);
        assert_eq!(copy.to_vec(), (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn equality_ignores_consumed_prefix() {
        let mut a = Bytes::from(vec![1u8, 2, 3]);
        let b = Bytes::from(vec![2u8, 3]);
        assert_ne!(a, b);
        a.advance(1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from_static(b"hello world");
        let hello = b.slice(0..5);
        assert_eq!(hello.as_slice(), b"hello");
        let world = b.slice(6..);
        assert_eq!(world.as_slice(), b"world");
        assert_eq!(b.slice(..).len(), 11);
        // Slicing is relative to the remaining view.
        let mut c = b.clone();
        c.advance(6);
        assert_eq!(c.slice(0..5), world);
    }
}
