//! Offline stand-in for the `criterion` crate.
//!
//! Implements the `criterion_group!`/`criterion_main!`/[`Criterion`] surface
//! the workspace's benches use, backed by a simple wall-clock harness: a
//! warm-up iteration followed by `sample_size` timed samples, reporting the
//! minimum/mean/max per-iteration time. No statistics engine, no plotting —
//! but the targets compile, run and print comparable numbers offline.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// The bench harness: collects named targets and runs them.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per target.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be non-zero");
        self.sample_size = n;
        self
    }

    /// Times one closure-driven benchmark and prints its summary line.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let mut times = b.samples;
        if times.is_empty() {
            println!("{id:50} (no samples)");
            return self;
        }
        times.sort_unstable();
        let mean: Duration = times.iter().sum::<Duration>() / times.len() as u32;
        println!(
            "{id:50} min {:>12.3?}  mean {:>12.3?}  max {:>12.3?}  ({} samples)",
            times[0],
            mean,
            times[times.len() - 1],
            times.len()
        );
        self
    }

    /// Runs the configured groups (used by `criterion_main!`).
    pub fn final_summary(&self) {}
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` once to warm up, then `sample_size` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a bench group: a function running each target against a shared
/// [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("self/smoke", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = target
    }

    #[test]
    fn harness_runs_targets() {
        benches();
    }
}
