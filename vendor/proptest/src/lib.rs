//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset the workspace's property tests use: range and tuple
//! [`Strategy`]s, `prop_map`, the `proptest!` macro with optional
//! `#![proptest_config(...)]`, and the `prop_assert*` macros. Cases are
//! generated from a deterministic per-test seed (derived from the test
//! name), so failures are reproducible; there is no shrinking — the failing
//! case's inputs are printed instead.

use rand::rngs::StdRng;
use rand::{RngExt, SampleUniform, SeedableRng};
use std::ops::Range;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Derives a strategy producing `f(value)`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.start..self.end)
    }
}

/// A strategy returning a fixed value (useful as a placeholder).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

/// Deterministic per-test RNG, seeded from the test's name.
pub fn test_rng(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Fails the current case with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Asserts two expressions are equal (via `PartialEq`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Asserts two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Declares property tests. Each `#[test] fn name(arg in strategy, ...)`
/// runs `cases` times with deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::Strategy::generate(&$strategy, &mut rng);
                    )*
                    let inputs = format!(
                        concat!("{{ ", $(stringify!($arg), ": {:?}, ",)* "}}"),
                        $(&$arg),*
                    );
                    let result: ::std::result::Result<(), String> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(message) = result {
                        panic!(
                            "property failed at case {case}/{total}: {message}\n  inputs: {inputs}",
                            total = config.cases,
                        );
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (i32, i32)> {
        (0i32..10, 10i32..20)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_maps_generate_in_bounds(
            x in 0u8..4,
            p in arb_pair(),
            s in (0i32..5).prop_map(|v| v * 2),
        ) {
            prop_assert!(x < 4);
            prop_assert!(p.0 < p.1, "pair ordered: {p:?}");
            prop_assert_eq!(s % 2, 0);
            prop_assert_ne!(p.1, -1);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        let s = 0u64..1_000_000;
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_inputs() {
        proptest! {
            fn inner(v in 0u32..10) {
                prop_assert!(v < 5, "v too big: {v}");
            }
        }
        inner();
    }
}
