//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access, so the workspace vendors the
//! tiny slice of `rand` it actually uses: a deterministic seeded generator
//! ([`rngs::StdRng`]), ranged sampling ([`RngExt::random_range`]) and
//! Fisher–Yates shuffling ([`seq::SliceRandom::shuffle`]). Everything is
//! reproducible from the seed alone — the repository's experiments depend on
//! that, not on cryptographic quality.

use core::ops::Range;

/// A source of pseudo-random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value in `[range.start, range.end)`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample an empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (range.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample an empty range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        range.start + unit * (range.end - range.start)
    }
}

impl SampleUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample an empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

/// Convenience sampling methods available on every generator.
pub trait RngExt: RngCore {
    /// A uniform draw from `[range.start, range.end)`.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic, fast, and good enough for weight
    /// initialisation and data shuffling.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::RngCore;

    /// In-place shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(-3i32..9);
            assert!((-3..9).contains(&v));
            let f = rng.random_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
            let u = rng.random_range(0usize..4);
            assert!(u < 4);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..57).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..57).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "57 elements should not shuffle to identity");
    }
}
